package comp

import (
	"strings"
	"testing"

	"repro/internal/fp"
	"repro/internal/prog"
)

func sym(name string, f prog.Features) *prog.Symbol {
	return &prog.Symbol{Name: name, File: "kernel.cpp", Exported: true, Work: 1, FPOps: 5, Features: f}
}

var (
	allFeat = prog.Features{MulAdd: true, Reduction: true, Division: true,
		SqrtLibm: true, ShortExpr: true}
	redSym  = sym("Reduce", prog.Features{Reduction: true, MulAdd: true})
	libmSym = sym("UseSqrt", prog.Features{SqrtLibm: true})
	noFeat  = sym("Plain", prog.Features{})
)

func TestCompilationString(t *testing.T) {
	c := Compilation{Compiler: GCC, OptLevel: "-O2", Switches: "-mavx2 -mfma"}
	if c.String() != "g++ -O2 -mavx2 -mfma" {
		t.Fatalf("String() = %q", c.String())
	}
	if c.WithFPIC().String() != "g++ -O2 -mavx2 -mfma -fPIC" {
		t.Fatalf("fPIC String() = %q", c.WithFPIC().String())
	}
	plain := Compilation{Compiler: Clang, OptLevel: "-O0"}
	if plain.String() != "clang++ -O0" {
		t.Fatalf("plain String() = %q", plain.String())
	}
}

func TestCompilationKeyIncludesInjection(t *testing.T) {
	c := Compilation{Compiler: GCC, OptLevel: "-O1"}
	ci := c.WithInjection("f", fp.Injection{OpIndex: 2, Op: fp.InjMul, Eps: 0.25})
	if c.Key() == ci.Key() {
		t.Fatal("injected compilation key equals clean key")
	}
	if !strings.Contains(ci.Key(), "inject=f") {
		t.Fatalf("injection key missing symbol: %q", ci.Key())
	}
	if ci.Inject == nil || c.Inject != nil {
		t.Fatal("WithInjection mutated receiver or returned no plan")
	}
}

func TestMatrixSize(t *testing.T) {
	m := Matrix()
	if len(m) != 244 {
		t.Fatalf("Matrix has %d compilations, want 244 (paper §3.1)", len(m))
	}
	counts := map[string]int{}
	for _, c := range m {
		counts[c.Compiler]++
	}
	if counts[GCC] != 68 || counts[Clang] != 72 || counts[ICPC] != 104 {
		t.Fatalf("per-compiler counts: %v (want g++ 68, clang++ 72, icpc 104)", counts)
	}
	// No duplicates.
	seen := map[string]bool{}
	for _, c := range m {
		if seen[c.Key()] {
			t.Fatalf("duplicate compilation %s", c.Key())
		}
		seen[c.Key()] = true
	}
}

func TestBaselineIsStrictEverywhere(t *testing.T) {
	for _, s := range []*prog.Symbol{redSym, libmSym, noFeat, sym("All", allFeat)} {
		got := Semantics(Baseline(), s)
		if !got.IsStrict() {
			t.Fatalf("baseline semantics for %s = %v, want strict", s.Name, got)
		}
	}
}

func TestGccPlainO2O3Strict(t *testing.T) {
	for _, lvl := range []string{"-O1", "-O2", "-O3"} {
		c := Compilation{Compiler: GCC, OptLevel: lvl}
		if got := Semantics(c, sym("All", allFeat)); !got.IsStrict() {
			t.Fatalf("g++ %s plain should be value-safe, got %v", lvl, got)
		}
	}
}

func TestGccFMAFlag(t *testing.T) {
	c := Compilation{Compiler: GCC, OptLevel: "-O2", Switches: "-mavx2 -mfma"}
	// Hot mul-add kernels reliably contract when licensed; cold code is
	// transformed only at the low per-function base rate.
	found := 0
	for _, n := range []string{"A", "B", "C", "D", "E", "F"} {
		s := sym(n, prog.Features{MulAdd: true, Hot: true})
		if Semantics(c, s).FuseFMA {
			found++
		}
	}
	if found < 4 {
		t.Fatalf("gcc -mavx2 -mfma contracted only %d/6 hot mul-add kernels", found)
	}
	coldHits := 0
	for i := 0; i < 100; i++ {
		s := sym("cold"+string(rune('A'+i%26))+string(rune('0'+i/26)), prog.Features{MulAdd: true})
		if Semantics(c, s).FuseFMA {
			coldHits++
		}
	}
	if coldHits == 0 || coldHits > 20 {
		t.Fatalf("cold contraction rate %d/100; want the low base rate", coldHits)
	}
	// At -O0/-O1 contraction must not happen even for hot kernels.
	for _, lvl := range []string{"-O0", "-O1"} {
		c := Compilation{Compiler: GCC, OptLevel: lvl, Switches: "-mavx2 -mfma"}
		for _, n := range []string{"A", "B", "C", "D"} {
			if Semantics(c, sym(n, prog.Features{MulAdd: true, Hot: true})).FuseFMA {
				t.Fatalf("gcc %s -mfma contracted", lvl)
			}
		}
	}
}

func TestGccUnsafeEnablesVectorReductions(t *testing.T) {
	c := Compilation{Compiler: GCC, OptLevel: "-O3",
		Switches: "-funsafe-math-optimizations -mavx2 -mfma"}
	foundWide := false
	for _, n := range []string{"A", "B", "C", "D", "E", "F", "G", "H"} {
		s := sym(n, prog.Features{Reduction: true, Hot: true})
		if w := Semantics(c, s).ReassocWidth; w == 4 {
			foundWide = true
		}
	}
	if !foundWide {
		t.Fatal("gcc unsafe+avx2 never produced width-4 reductions in hot kernels")
	}
}

func TestGcc387ExtendedPrecision(t *testing.T) {
	c := Compilation{Compiler: GCC, OptLevel: "-O2", Switches: "-mfpmath=387"}
	if !Semantics(c, redSym).ExtendedPrecision {
		t.Fatal("-mfpmath=387 did not widen intermediates")
	}
	if Semantics(c, noFeat).ExtendedPrecision {
		t.Fatal("featureless symbol widened")
	}
}

func TestClangIgnoresBareMFMA(t *testing.T) {
	c := Compilation{Compiler: Clang, OptLevel: "-O3", Switches: "-mavx2 -mfma"}
	for _, n := range []string{"A", "B", "C", "D", "E"} {
		s := sym(n, prog.Features{MulAdd: true, Reduction: true})
		if got := Semantics(c, s); !got.IsStrict() {
			t.Fatalf("clang -mfma alone changed semantics: %v", got)
		}
	}
}

func TestIcpcDefaultIsUnsafe(t *testing.T) {
	c := Compilation{Compiler: ICPC, OptLevel: "-O2"}
	variable := false
	for _, n := range []string{"A", "B", "C", "D", "E"} {
		f := allFeat
		f.Hot = true
		s := sym(n, f)
		if !Semantics(c, s).IsStrict() {
			variable = true
		}
	}
	if !variable {
		t.Fatal("icpc -O2 default (fp-model fast=1) produced strict code everywhere")
	}
	// -O0 disables compile-time transforms.
	c0 := Compilation{Compiler: ICPC, OptLevel: "-O0"}
	if got := Semantics(c0, sym("A", allFeat)); !got.IsStrict() {
		t.Fatalf("icpc -O0 compile semantics not strict: %v", got)
	}
}

func TestIcpcPreciseModel(t *testing.T) {
	c := Compilation{Compiler: ICPC, OptLevel: "-O3", Switches: "-fp-model precise"}
	for _, n := range []string{"A", "B", "C"} {
		s := sym(n, allFeat)
		got := Semantics(c, s)
		if got.FuseFMA || got.UnsafeMath || got.ReassocWidth > 1 {
			t.Fatalf("icpc -fp-model precise still value-changing: %v", got)
		}
	}
}

func TestIcpcFast2AddsFTZAndApprox(t *testing.T) {
	c := Compilation{Compiler: ICPC, OptLevel: "-O3", Switches: "-fp-model fast=2"}
	s := sym("A", allFeat)
	got := Semantics(c, s)
	if !got.FlushSubnormals {
		t.Fatalf("fast=2 without FTZ: %v", got)
	}
	if !got.ApproxMath {
		t.Fatalf("fast=2 without approximate libm: %v", got)
	}
}

func TestIcpcNoFMASwitch(t *testing.T) {
	with := Compilation{Compiler: ICPC, OptLevel: "-O2"}
	without := Compilation{Compiler: ICPC, OptLevel: "-O2", Switches: "-no-fma"}
	anyFMA := false
	for _, n := range []string{"A", "B", "C", "D", "E"} {
		s := sym(n, prog.Features{MulAdd: true, Hot: true})
		if Semantics(with, s).FuseFMA {
			anyFMA = true
		}
		if Semantics(without, s).FuseFMA {
			t.Fatal("-no-fma still contracted")
		}
	}
	if !anyFMA {
		t.Fatal("icpc default never contracted")
	}
}

func TestXlcO3StrictQualifier(t *testing.T) {
	o3 := Compilation{Compiler: XLC, OptLevel: "-O3"}
	strictq := Compilation{Compiler: XLC, OptLevel: "-O3", Switches: "-qstrict=vectorprecision"}
	o2 := Compilation{Compiler: XLC, OptLevel: "-O2"}
	s := sym("Energy", allFeat)
	if Semantics(o2, s).UnsafeMath || Semantics(o2, s).ReassocWidth > 1 {
		t.Fatal("xlc -O2 should be value-safe")
	}
	g3 := Semantics(o3, s)
	if !g3.UnsafeMath && g3.ReassocWidth == 1 && !g3.FuseFMA {
		t.Fatalf("xlc -O3 applied nothing: %v", g3)
	}
	gs := Semantics(strictq, s)
	if gs.ReassocWidth > 1 || gs.UnsafeMath {
		t.Fatalf("-qstrict=vectorprecision kept vector reassociation: %v", gs)
	}
}

func TestSemanticsDeterministic(t *testing.T) {
	for _, c := range Matrix()[:40] {
		s := sym("K", allFeat)
		if Semantics(c, s) != Semantics(c, s) {
			t.Fatalf("non-deterministic semantics for %s", c)
		}
	}
}

func TestLinkStepApproxMath(t *testing.T) {
	if !LinkApproxMath(ICPC) {
		t.Fatal("icpc link must substitute SVML")
	}
	if LinkApproxMath(GCC) || LinkApproxMath(Clang) || LinkApproxMath(XLC) {
		t.Fatal("non-Intel drivers must not substitute SVML")
	}
	s := ApplyLinkStep(ICPC, libmSym, fp.Strict)
	if !s.ApproxMath {
		t.Fatal("link step did not set ApproxMath on libm user")
	}
	s2 := ApplyLinkStep(ICPC, noFeat, fp.Strict)
	if s2.ApproxMath {
		t.Fatal("link step set ApproxMath on non-libm symbol")
	}
	s3 := ApplyLinkStep(GCC, libmSym, fp.Strict)
	if s3.ApproxMath {
		t.Fatal("gcc link set ApproxMath")
	}
}

func TestFPICCanRemoveVariability(t *testing.T) {
	// Over many (compilation,file) pairs, the fPIC kill gate must fire for
	// some and not for others.
	c := Compilation{Compiler: GCC, OptLevel: "-O3",
		Switches: "-funsafe-math-optimizations -mavx2 -mfma"}
	killed, kept := 0, 0
	for i := 0; i < 40; i++ {
		s := &prog.Symbol{Name: "f", File: "file" + string(rune('A'+i)) + ".cpp",
			Features: prog.Features{Reduction: true, ShortExpr: true, Hot: true}}
		plain := Semantics(c, s)
		pic := Semantics(c.WithFPIC(), s)
		if plain.IsStrict() {
			continue
		}
		if pic.IsStrict() {
			killed++
		} else {
			kept++
		}
	}
	if killed == 0 || kept == 0 {
		t.Fatalf("fPIC kill gate degenerate: killed=%d kept=%d", killed, kept)
	}
}

func TestSpeedFactorShape(t *testing.T) {
	ref := PerfReference()
	s := sym("Hot", allFeat)
	fRef := SpeedFactor(ref, s)
	if fRef < 0.9 || fRef > 1.1 {
		t.Fatalf("reference speed factor %g not ~1", fRef)
	}
	o0 := SpeedFactor(Baseline(), s)
	if o0 < 1.8 {
		t.Fatalf("-O0 factor %g should be much slower than 1", o0)
	}
	o3 := SpeedFactor(Compilation{Compiler: GCC, OptLevel: "-O3"}, s)
	if o3 >= fRef {
		t.Fatalf("-O3 (%g) not faster than -O2 (%g)", o3, fRef)
	}
	// xlc O2 -> O3 must be a dramatic speedup (motivating example, 2.42x).
	x2 := SpeedFactor(Compilation{Compiler: XLC, OptLevel: "-O2"}, s)
	x3 := SpeedFactor(Compilation{Compiler: XLC, OptLevel: "-O3"}, s)
	if ratio := x2 / x3; ratio < 1.8 || ratio > 3.2 {
		t.Fatalf("xlc O2/O3 ratio %g outside the motivating example's shape", ratio)
	}
	// fPIC costs something.
	if SpeedFactor(ref.WithFPIC(), s) <= fRef*0.99 {
		t.Fatal("fPIC did not slow the code down")
	}
}

func TestRunCost(t *testing.T) {
	a := sym("A", prog.Features{})
	b := sym("B", prog.Features{})
	b.Work = 10
	m := map[*prog.Symbol]Compilation{a: PerfReference(), b: PerfReference()}
	total := RunCost(m)
	if total <= 10 || total >= 12.5 {
		t.Fatalf("RunCost = %g, want ~11 (1+10 with small jitter)", total)
	}
}

func TestFileMixHazardOnlyCrossVendor(t *testing.T) {
	base := Baseline()
	gcc := Compilation{Compiler: GCC, OptLevel: "-O3", Switches: "-ffast-math"}
	for i := 0; i < 50; i++ {
		f := "f" + string(rune('a'+i%26)) + ".cpp"
		if FileMixHazard(gcc, base, f) {
			t.Fatal("gcc/gcc mix flagged as ABI hazard")
		}
	}
	// icpc mixes hazard on some small fraction of files.
	hits := 0
	for _, c := range Matrix() {
		if c.Compiler != ICPC {
			continue
		}
		for i := 0; i < 15; i++ {
			if FileMixHazard(c, base, "file"+string(rune('a'+i))+".cpp") {
				hits++
			}
		}
	}
	if hits == 0 {
		t.Fatal("icpc/gcc mixing never hazardous")
	}
}

func TestSymbolMixHazardRates(t *testing.T) {
	count := func(compiler string) int {
		hits := 0
		n := 0
		for _, c := range Matrix() {
			if c.Compiler != compiler {
				continue
			}
			for i := 0; i < 10; i++ {
				n++
				if SymbolMixHazard(c, "file"+string(rune('a'+i))+".cpp") {
					hits++
				}
			}
		}
		return hits * 100 / n
	}
	if p := count(Clang); p != 0 {
		t.Fatalf("clang symbol hazard rate %d%%, want 0", p)
	}
	if p := count(GCC); p < 20 || p > 40 {
		t.Fatalf("gcc symbol hazard rate %d%%, want ~30", p)
	}
	if p := count(ICPC); p < 14 || p > 32 {
		t.Fatalf("icpc symbol hazard rate %d%%, want ~22", p)
	}
}

func TestOptNumFallback(t *testing.T) {
	if optNum("-Og") != 2 {
		t.Fatal("unknown level should behave like -O2")
	}
	for i, lvl := range OptLevels {
		if optNum(lvl) != i {
			t.Fatalf("optNum(%s) = %d", lvl, optNum(lvl))
		}
	}
}

func TestGateBounds(t *testing.T) {
	if gate(0, "x") {
		t.Fatal("gate(0) fired")
	}
	if !gate(100, "x") {
		t.Fatal("gate(100) did not fire")
	}
	// Roughly pct% of keys fire.
	hits := 0
	for i := 0; i < 1000; i++ {
		if gate(50, "key", string(rune(i)), "t") {
			hits++
		}
	}
	if hits < 400 || hits > 600 {
		t.Fatalf("gate(50) fired %d/1000", hits)
	}
}

func TestCompilersTable(t *testing.T) {
	cs := Compilers()
	if len(cs) != 3 {
		t.Fatalf("Compilers() returned %d entries", len(cs))
	}
	if cs[0].Version != "gcc-8.2.0" || cs[2].Version != "icpc-18.0.3" {
		t.Fatalf("compiler versions wrong: %+v", cs)
	}
	if XLCInfo().Name != XLC {
		t.Fatal("XLCInfo wrong")
	}
}
