// Package mfem is a miniature finite-element library in the shape of the
// MFEM library the paper studies (§3.1–§3.3): vectors, dense and sparse
// matrices, Cartesian meshes, low-order elements, element integrators,
// global assembly, iterative solvers, and 19 end-to-end examples used as
// FLiT test cases. Every function is registered as a symbol of a simulated
// C++ source tree so the compilation model can assign it floating-point
// semantics and Bisect can search over its files and symbols.
//
// All floating-point arithmetic flows through the fp.Env of the function's
// linked compilation, obtained from the link.Machine at function entry:
//
//	env, done := m.Fn("Vector::Dot")
//	defer done()
package mfem

import (
	"repro/internal/prog"
	"sync"
)

var (
	buildOnce sync.Once
	theProg   *prog.Program
)

// Program returns the (singleton) static description of the mini-MFEM
// source tree. The same instance must be used everywhere: symbol pointers
// are identity keys in the cost model.
func Program() *prog.Program {
	buildOnce.Do(func() { theProg = buildProgram() })
	return theProg
}

func buildProgram() *prog.Program {
	p := prog.New("mfem")

	p.AddFile("vector.cpp",
		&prog.Symbol{Name: "Vector::Dot", Exported: true, Work: 3, FPOps: 2, SLOC: 9,
			Features: prog.Features{Reduction: true, MulAdd: true}},
		&prog.Symbol{Name: "Vector::Norml2", Exported: true, Work: 2, FPOps: 3, SLOC: 7,
			Features: prog.Features{Reduction: true, MulAdd: true, SqrtLibm: true},
			Callees:  []string{"Vector::Dot"}},
		&prog.Symbol{Name: "Vector::Sum", Exported: true, Work: 2, FPOps: 1, SLOC: 7,
			Features: prog.Features{Reduction: true}},
		&prog.Symbol{Name: "Vector::Add", Exported: true, Work: 1, FPOps: 1, SLOC: 6},
		&prog.Symbol{Name: "Vector::Subtract", Exported: true, Work: 1, FPOps: 1, SLOC: 6},
		&prog.Symbol{Name: "Vector::Scale", Exported: true, Work: 1, FPOps: 1, SLOC: 5},
		&prog.Symbol{Name: "Vector::Axpy", Exported: true, Work: 2, FPOps: 2, SLOC: 6,
			Features: prog.Features{MulAdd: true}},
		&prog.Symbol{Name: "Vector::Normalize", Exported: true, Work: 2, FPOps: 4, SLOC: 9,
			Features: prog.Features{SqrtLibm: true, Division: true},
			Callees:  []string{"Vector::Norml2", "Vector::Scale"}},
		&prog.Symbol{Name: "Vector::DistanceTo", Exported: true, Work: 2, FPOps: 4, SLOC: 9,
			Features: prog.Features{Reduction: true, SqrtLibm: true}},
		&prog.Symbol{Name: "Vector::Max", Exported: true, Work: 1, FPOps: 0, SLOC: 8},
	)

	p.AddFile("densemat.cpp",
		&prog.Symbol{Name: "DenseMatrix::Mult", Exported: true, Work: 4, FPOps: 2, SLOC: 12,
			Features: prog.Features{Reduction: true, MulAdd: true}},
		&prog.Symbol{Name: "DenseMatrix::MultTranspose", Exported: true, Work: 4, FPOps: 2, SLOC: 12,
			Features: prog.Features{Reduction: true, MulAdd: true}},
		&prog.Symbol{Name: "DenseMatrix::AddMult_a_AAt", Exported: true, Work: 5, FPOps: 3, SLOC: 14,
			Features: prog.Features{Reduction: true, MulAdd: true, Hot: true}},
		&prog.Symbol{Name: "DenseMatrix::Det2", Exported: true, Work: 1, FPOps: 3, SLOC: 5,
			Features: prog.Features{MulAdd: true}},
		&prog.Symbol{Name: "DenseMatrix::Trace", Exported: true, Work: 1, FPOps: 1, SLOC: 6,
			Features: prog.Features{Reduction: true}},
		&prog.Symbol{Name: "DenseMatrix::FNorm", Exported: true, Work: 2, FPOps: 3, SLOC: 8,
			Features: prog.Features{Reduction: true, SqrtLibm: true}},
		&prog.Symbol{Name: "DenseMatrix::Invert2x2", Exported: true, Work: 1, FPOps: 7, SLOC: 10,
			Features: prog.Features{Division: true, MulAdd: true},
			Callees:  []string{"DenseMatrix::Det2"}},
		&prog.Symbol{Name: "DenseMatrix::LSolve", Exported: true, Work: 3, FPOps: 6, SLOC: 22,
			Features: prog.Features{Division: true, MulAdd: true, Reduction: true}},
	)

	p.AddFile("sparsemat.cpp",
		&prog.Symbol{Name: "SparseMatrix::Mult", Exported: true, Work: 5, FPOps: 2, SLOC: 13,
			Features: prog.Features{Reduction: true, MulAdd: true}},
		&prog.Symbol{Name: "SparseMatrix::AddMult", Exported: true, Work: 4, FPOps: 2, SLOC: 12,
			Features: prog.Features{Reduction: true, MulAdd: true}},
		&prog.Symbol{Name: "SparseMatrix::InnerProduct", Exported: true, Work: 4, FPOps: 4, SLOC: 11,
			Features: prog.Features{Reduction: true, MulAdd: true},
			Callees:  []string{"SparseMatrix::Mult", "Vector::Dot"}},
		&prog.Symbol{Name: "SparseMatrix::GetDiag", Exported: true, Work: 1, FPOps: 0, SLOC: 9},
		&prog.Symbol{Name: "SparseMatrix::JacobiSmooth", Exported: true, Work: 4, FPOps: 4, SLOC: 15,
			Features: prog.Features{Division: true, Reduction: true, MulAdd: true}},
		&prog.Symbol{Name: "SparseMatrix::GaussSeidel", Exported: true, Work: 4, FPOps: 4, SLOC: 16,
			Features: prog.Features{Division: true, Reduction: true, MulAdd: true}},
	)

	p.AddFile("mesh.cpp",
		&prog.Symbol{Name: "Mesh::MakeCartesian1D", Exported: true, Work: 1, FPOps: 2, SLOC: 12,
			Features: prog.Features{Division: true, MulAdd: true}},
		&prog.Symbol{Name: "Mesh::MakeCartesian2D", Exported: true, Work: 2, FPOps: 4, SLOC: 18,
			Features: prog.Features{Division: true, MulAdd: true}},
		&prog.Symbol{Name: "Mesh::ElementSize", Exported: true, Work: 1, FPOps: 1, SLOC: 5,
			Features: prog.Features{Division: true}},
		&prog.Symbol{Name: "Mesh::PerturbNodes", Exported: true, Work: 1, FPOps: 3, SLOC: 10,
			Features: prog.Features{MulAdd: true, ShortExpr: true}},
	)

	p.AddFile("fe.cpp",
		&prog.Symbol{Name: "FE::Shape1D", Exported: true, Work: 1, FPOps: 2, SLOC: 6,
			Features: prog.Features{ShortExpr: true}},
		&prog.Symbol{Name: "FE::DShape1D", Exported: true, Work: 1, FPOps: 1, SLOC: 5},
		&prog.Symbol{Name: "FE::Shape2D", Exported: true, Work: 1, FPOps: 4, SLOC: 9,
			Features: prog.Features{MulAdd: true, ShortExpr: true},
			Callees:  []string{"FE::Shape1D"}},
		&prog.Symbol{Name: "FE::DShape2D", Exported: true, Work: 1, FPOps: 4, SLOC: 10,
			Callees: []string{"FE::Shape1D", "FE::DShape1D"}},
	)

	p.AddFile("quadrature.cpp",
		&prog.Symbol{Name: "QuadRule::Gauss2", Exported: true, Work: 1, FPOps: 2, SLOC: 8,
			Features: prog.Features{SqrtLibm: true, Division: true}},
		&prog.Symbol{Name: "QuadRule::Gauss3", Exported: true, Work: 1, FPOps: 3, SLOC: 10,
			Features: prog.Features{SqrtLibm: true, Division: true}},
		&prog.Symbol{Name: "QuadRule::MapToInterval", Exported: true, Work: 1, FPOps: 2, SLOC: 6,
			Features: prog.Features{MulAdd: true, ShortExpr: true}},
	)

	p.AddFile("eltrans.cpp",
		&prog.Symbol{Name: "IsoTrans::Map1D", Exported: true, Work: 1, FPOps: 2, SLOC: 6,
			Features: prog.Features{MulAdd: true}},
		&prog.Symbol{Name: "IsoTrans::Weight1D", Exported: true, Work: 1, FPOps: 1, SLOC: 4},
		&prog.Symbol{Name: "IsoTrans::Map2D", Exported: true, Work: 2, FPOps: 6, SLOC: 12,
			Features: prog.Features{MulAdd: true, Reduction: true},
			Callees:  []string{"FE::Shape2D"}},
		&prog.Symbol{Name: "IsoTrans::Weight2D", Exported: true, Work: 2, FPOps: 5, SLOC: 10,
			Features: prog.Features{MulAdd: true}},
	)

	p.AddFile("coeff.cpp",
		&prog.Symbol{Name: "Coefficient::Poly", Exported: true, Work: 1, FPOps: 3, SLOC: 5,
			Features: prog.Features{MulAdd: true, ShortExpr: true}},
		&prog.Symbol{Name: "Coefficient::Runge", Exported: true, Work: 1, FPOps: 3, SLOC: 5,
			Features: prog.Features{Division: true, MulAdd: true}},
		&prog.Symbol{Name: "Coefficient::SqrtRadius", Exported: true, Work: 1, FPOps: 3, SLOC: 6,
			Features: prog.Features{SqrtLibm: true, MulAdd: true}},
		&prog.Symbol{Name: "Coefficient::ExpDecay", Exported: true, Work: 1, FPOps: 2, SLOC: 5,
			Features: prog.Features{SqrtLibm: true}},
	)

	p.AddFile("bilininteg.cpp",
		&prog.Symbol{Name: "MassIntegrator::Element1D", Exported: true, Work: 3, FPOps: 4, SLOC: 18,
			Features: prog.Features{Reduction: true, MulAdd: true},
			Callees:  []string{"FE::Shape1D", "QuadRule::Gauss2", "IsoTrans::Weight1D"}},
		&prog.Symbol{Name: "MassIntegrator::Element2D", Exported: true, Work: 4, FPOps: 5, SLOC: 22,
			Features: prog.Features{Reduction: true, MulAdd: true},
			Callees:  []string{"FE::Shape2D", "QuadRule::Gauss2", "IsoTrans::Weight2D"}},
		&prog.Symbol{Name: "DiffusionIntegrator::Element1D", Exported: true, Work: 3, FPOps: 4, SLOC: 18,
			Features: prog.Features{Reduction: true, MulAdd: true, Division: true},
			Callees:  []string{"FE::DShape1D", "QuadRule::Gauss2", "IsoTrans::Weight1D"}},
		&prog.Symbol{Name: "DiffusionIntegrator::Element2D", Exported: true, Work: 4, FPOps: 6, SLOC: 24,
			Features: prog.Features{Reduction: true, MulAdd: true, Division: true},
			Callees:  []string{"FE::DShape2D", "QuadRule::Gauss2", "IsoTrans::Weight2D"}},
		&prog.Symbol{Name: "ConvectionIntegrator::Element1D", Exported: true, Work: 3, FPOps: 4, SLOC: 16,
			Features: prog.Features{Reduction: true, MulAdd: true},
			Callees:  []string{"FE::Shape1D", "FE::DShape1D", "QuadRule::Gauss2"}},
	)

	p.AddFile("bilinearform.cpp",
		&prog.Symbol{Name: "BilinearForm::AssembleMass1D", Exported: true, Work: 4, FPOps: 2, SLOC: 20,
			Features: prog.Features{Reduction: true},
			Callees:  []string{"MassIntegrator::Element1D", "scatterElement"}},
		&prog.Symbol{Name: "BilinearForm::AssembleMass2D", Exported: true, Work: 5, FPOps: 2, SLOC: 24,
			Features: prog.Features{Reduction: true},
			Callees:  []string{"MassIntegrator::Element2D", "scatterElement"}},
		&prog.Symbol{Name: "BilinearForm::AssembleDiffusion1D", Exported: true, Work: 4, FPOps: 2, SLOC: 20,
			Features: prog.Features{Reduction: true},
			Callees:  []string{"DiffusionIntegrator::Element1D", "scatterElement"}},
		&prog.Symbol{Name: "BilinearForm::AssembleDiffusion2D", Exported: true, Work: 5, FPOps: 2, SLOC: 24,
			Features: prog.Features{Reduction: true},
			Callees:  []string{"DiffusionIntegrator::Element2D", "scatterElement"}},
		&prog.Symbol{Name: "scatterElement", Exported: false, Work: 1, FPOps: 1, SLOC: 10,
			Features: prog.Features{ShortExpr: true}},
	)

	p.AddFile("linearform.cpp",
		&prog.Symbol{Name: "LinearForm::Assemble1D", Exported: true, Work: 3, FPOps: 3, SLOC: 16,
			Features: prog.Features{Reduction: true, MulAdd: true},
			Callees:  []string{"FE::Shape1D", "QuadRule::Gauss3", "IsoTrans::Map1D"}},
		&prog.Symbol{Name: "LinearForm::Assemble2D", Exported: true, Work: 4, FPOps: 4, SLOC: 20,
			Features: prog.Features{Reduction: true, MulAdd: true},
			Callees:  []string{"FE::Shape2D", "QuadRule::Gauss2", "IsoTrans::Map2D"}},
	)

	p.AddFile("solvers.cpp",
		&prog.Symbol{Name: "CG::Solve", Exported: true, Work: 8, FPOps: 10, SLOC: 38,
			Features: prog.Features{Reduction: true, MulAdd: true, Division: true, Branch: true},
			Callees: []string{"SparseMatrix::Mult", "Vector::Dot", "Vector::Axpy",
				"Vector::Norml2"}},
		&prog.Symbol{Name: "PCG::Solve", Exported: true, Work: 9, FPOps: 12, SLOC: 44,
			Features: prog.Features{Reduction: true, MulAdd: true, Division: true, Branch: true},
			Callees: []string{"SparseMatrix::Mult", "SparseMatrix::JacobiSmooth",
				"Vector::Dot", "Vector::Axpy", "Vector::Norml2"}},
		&prog.Symbol{Name: "Jacobi::Iterate", Exported: true, Work: 5, FPOps: 5, SLOC: 18,
			Features: prog.Features{Division: true, Reduction: true},
			Callees:  []string{"SparseMatrix::JacobiSmooth"}},
		&prog.Symbol{Name: "PowerIteration::Run", Exported: true, Work: 6, FPOps: 6, SLOC: 22,
			Features: prog.Features{Reduction: true, SqrtLibm: true, Division: true},
			Callees:  []string{"SparseMatrix::Mult", "Vector::Normalize", "Vector::Dot"}},
	)

	p.AddFile("gridfunc.cpp",
		&prog.Symbol{Name: "GridFunction::Project1D", Exported: true, Work: 2, FPOps: 2, SLOC: 12,
			Callees: []string{"IsoTrans::Map1D"}},
		&prog.Symbol{Name: "GridFunction::Project2D", Exported: true, Work: 3, FPOps: 3, SLOC: 14,
			Callees: []string{"IsoTrans::Map2D"}},
		&prog.Symbol{Name: "GridFunction::L2Error", Exported: true, Work: 3, FPOps: 4, SLOC: 14,
			Features: prog.Features{Reduction: true, SqrtLibm: true},
			Callees:  []string{"Vector::Subtract", "Vector::Norml2"}},
	)

	p.AddFile("ode.cpp",
		&prog.Symbol{Name: "RK2::Step", Exported: true, Work: 3, FPOps: 5, SLOC: 16,
			Features: prog.Features{MulAdd: true, ShortExpr: true},
			Callees:  []string{"Vector::Axpy"}},
		&prog.Symbol{Name: "UpwindFlux", Exported: true, Work: 2, FPOps: 3, SLOC: 10,
			Features: prog.Features{Branch: true, ShortExpr: true}},
	)

	addExampleFiles(p)

	if err := p.Validate(); err != nil {
		panic("mfem: invalid program: " + err.Error())
	}
	return p
}

// exampleCallees maps every example to the library symbols its main calls
// directly. Kept in one place so the registry and the implementations stay
// in sync (exercised by tests).
var exampleCallees = map[int][]string{
	1:  {"Mesh::MakeCartesian1D", "BilinearForm::AssembleDiffusion1D", "LinearForm::Assemble1D", "CG::Solve"},
	2:  {"Mesh::MakeCartesian2D", "BilinearForm::AssembleDiffusion2D", "LinearForm::Assemble2D", "CG::Solve"},
	3:  {"Mesh::MakeCartesian1D", "Mesh::PerturbNodes", "BilinearForm::AssembleMass1D", "LinearForm::Assemble1D", "CG::Solve", "GridFunction::Project1D", "Coefficient::Poly", "Coefficient::Runge"},
	4:  {"Mesh::MakeCartesian2D", "BilinearForm::AssembleDiffusion2D", "LinearForm::Assemble2D", "CG::Solve", "Coefficient::SqrtRadius"},
	5:  {"Mesh::MakeCartesian2D", "BilinearForm::AssembleDiffusion2D", "LinearForm::Assemble2D", "PCG::Solve", "Coefficient::SqrtRadius"},
	6:  {"Mesh::MakeCartesian1D", "Mesh::ElementSize", "QuadRule::MapToInterval", "Coefficient::Poly", "UpwindFlux", "RK2::Step", "Vector::Sum"},
	7:  {"Mesh::MakeCartesian2D", "BilinearForm::AssembleMass2D", "GridFunction::Project2D", "Coefficient::Poly", "SparseMatrix::Mult"},
	8:  {"Mesh::MakeCartesian2D", "BilinearForm::AssembleDiffusion2D", "BilinearForm::AssembleMass2D", "LinearForm::Assemble2D", "PCG::Solve", "GridFunction::L2Error"},
	9:  {"Mesh::MakeCartesian2D", "BilinearForm::AssembleDiffusion2D", "BilinearForm::AssembleMass2D", "LinearForm::Assemble2D", "CG::Solve", "DenseMatrix::Mult", "DenseMatrix::MultTranspose", "DenseMatrix::Trace", "DenseMatrix::FNorm", "DenseMatrix::Invert2x2", "DenseMatrix::LSolve", "SparseMatrix::Mult", "Vector::Normalize", "Coefficient::ExpDecay"},
	10: {"Mesh::MakeCartesian1D", "BilinearForm::AssembleDiffusion1D", "Coefficient::ExpDecay", "CG::Solve", "Vector::Norml2"},
	11: {"Mesh::MakeCartesian1D", "BilinearForm::AssembleDiffusion1D", "PowerIteration::Run", "Vector::DistanceTo"},
	12: {"Mesh::MakeCartesian1D", "SparseMatrix::GetDiag", "Vector::Max"},
	13: {"DenseMatrix::AddMult_a_AAt"},
	14: {"Mesh::MakeCartesian2D", "BilinearForm::AssembleDiffusion2D", "LinearForm::Assemble2D", "CG::Solve", "Vector::Sum"},
	15: {"Mesh::MakeCartesian2D", "BilinearForm::AssembleMass2D", "BilinearForm::AssembleDiffusion2D", "CG::Solve", "Coefficient::SqrtRadius", "Coefficient::ExpDecay"},
	16: {"Mesh::MakeCartesian1D", "BilinearForm::AssembleMass1D", "BilinearForm::AssembleDiffusion1D", "SparseMatrix::Mult", "SparseMatrix::AddMult", "CG::Solve", "Coefficient::Poly"},
	17: {"Mesh::MakeCartesian2D", "BilinearForm::AssembleDiffusion2D", "SparseMatrix::GaussSeidel", "SparseMatrix::InnerProduct", "LinearForm::Assemble2D"},
	18: {"Mesh::MakeCartesian1D", "Vector::Add", "Vector::Scale", "SparseMatrix::GetDiag"},
	19: {"Mesh::MakeCartesian1D", "ConvectionIntegrator::Element1D", "RK2::Step", "UpwindFlux", "Vector::Sum", "Jacobi::Iterate"},
}

// exampleFeatures: FP patterns present in each example's own main body.
// Examples 12, 13, and 18 keep their mains pattern-free: 12 and 18 compute
// in exactly-representable arithmetic (the two invariant tests of Figure 5),
// and 13's main is plain control flow around the AddMult_a_AAt kernel, so
// the single-function blame of Finding 2 holds.
var exampleFeatures = map[int]prog.Features{
	1:  {ShortExpr: true},
	2:  {ShortExpr: true},
	3:  {MulAdd: true},
	4:  {ShortExpr: true},
	5:  {ShortExpr: true, MulAdd: true},
	6:  {MulAdd: true, ShortExpr: true},
	7:  {Reduction: true},
	8:  {ShortExpr: true},
	9:  {MulAdd: true, Reduction: true},
	10: {MulAdd: true, Division: true, Branch: true},
	11: {ShortExpr: true},
	12: {},
	13: {},
	14: {ShortExpr: true},
	15: {MulAdd: true},
	16: {ShortExpr: true},
	17: {Reduction: true},
	18: {},
	19: {MulAdd: true},
}

func addExampleFiles(p *prog.Program) {
	works := map[int]float64{
		1: 6, 2: 10, 3: 6, 4: 11, 5: 12, 6: 7, 7: 8, 8: 14, 9: 16, 10: 9,
		11: 10, 12: 3, 13: 8, 14: 10, 15: 13, 16: 11, 17: 12, 18: 3, 19: 9,
	}
	for i := 1; i <= 19; i++ {
		name := exampleSymbol(i)
		file := exampleFile(i)
		p.AddFile(file, &prog.Symbol{
			Name:     name,
			Exported: true,
			Work:     works[i],
			FPOps:    8,
			SLOC:     60,
			Features: exampleFeatures[i],
			Callees:  exampleCallees[i],
		})
	}
}

func exampleSymbol(i int) string {
	return "main_ex" + itoa(i)
}

func exampleFile(i int) string {
	return "ex" + itoa(i) + ".cpp"
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return string(rune('0'+i/10)) + string(rune('0'+i%10))
}
