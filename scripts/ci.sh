#!/bin/sh
# ci.sh — the canonical tier-1+ gate (see ROADMAP.md).
#
#   go vet           static checks
#   go build         tier-1, part 1
#   go test -race    tier-1, part 2, with the race detector (and -cover:
#                    the parallel execution engine must be data-race-free
#                    at every -j, and per-package statement coverage is
#                    appended to BENCH_shard.json so the test-quality
#                    trajectory is tracked alongside the perf one)
#   bench smoke      one iteration of the cheap benchmarks, so the
#                    benchmark harness itself cannot rot
#   shard smoke      the distributed protocol end to end through real
#                    binaries: quickstart as 2 shards + merge must be
#                    byte-identical to the unsharded run
#   incremental      the incremental-campaign engine end to end: a warmed
#                    re-run of the identical command reports an empty
#                    delta, a one-flag mutation reports exactly the
#                    mutated cells, `flit delta` agrees offline, and
#                    `flit gc` prunes only the superseded generation
#   bisect smoke     the speculative bisect engine end to end through a
#                    real binary: the laghos-bisect example at -j 1 (the
#                    paper's sequential probe order) and -j 8 (speculative)
#                    must print byte-identical output
#   store smoke      the persistent run store cross-process through the
#                    real flit binary: two identical runs sharing only a
#                    -store directory must print byte-identical output, the
#                    second materializing zero builds with nonzero store
#                    hits; `flit store stats`/`gc` must see and prune the
#                    entries
#   remote smoke     the remote store tier cross-machine through real
#                    binaries: `flit store serve` on a loopback port, then
#                    two runs sharing nothing but the URL — the second must
#                    print byte-identical output materializing zero builds
#                    with nonzero remote hits; SIGTERM must drain and exit 0
#   coord smoke      the multi-tenant campaign coordinator end to end
#                    through real binaries, worker crash and poisoned
#                    shard included: `flit coord serve` owns a table4
#                    campaign held open by a stalling worker while two
#                    more campaigns are submitted over HTTP — a healthy
#                    table3 and a table2 whose shard 1 is poisoned
#                    (FLIT_WORK_FAIL) under an attempt budget of 2. The
#                    poisoned shard must be quarantined and its campaign
#                    declared terminally FAILED while the tenancy is
#                    still live (status views render the quarantine,
#                    budget, and failure excerpt), then the stalling
#                    worker is SIGKILLed so its lease expires and is
#                    re-leased. The coordinator exits NON-zero naming
#                    the quarantined shard; the healthy campaigns merge
#                    byte-identical to unsharded runs with zero
#                    re-leases on table3 (cross-campaign isolation), and
#                    merging the failed campaign's partial artifact set
#                    must fail naming exactly the missing shard
#   bench shard      one iteration each of BenchmarkParallelEngineSweep,
#                    BenchmarkSpeculativeBisect, BenchmarkWarmPath,
#                    BenchmarkPersistentStore, BenchmarkRemoteStore, and
#                    BenchmarkCoordCampaign with BENCH_SHARD_JSON set,
#                    appending this run's engine
#                    timings (cache cold/warm, fan-out, shard+merge, bisect
#                    j1/j8 + spec-execs, warm_sweep_sec +
#                    warm_skipped_builds + cache_speedup_x, store_cold_sec
#                    + store_warm_sec + store_hits, remote_warm_sec +
#                    remote_hits + remote_retries, coord_campaigns +
#                    coord_campaign_sec + coord_campaign2_sec +
#                    coord_releases + coord_fail_reports +
#                    coord_quarantined) to BENCH_shard.json —
#                    the recorded perf trajectory. The warm benches also
#                    enforce the key-first contract: byte-identical output
#                    with zero executables built and zero run-cache misses
#                    (zero builds and nonzero store/remote hits for the
#                    store benches) on a fully covered re-run
#
# Run from the repository root: ./scripts/ci.sh
set -eux

go vet ./...
go build ./...

SHARD_TMP=$(mktemp -d)
trap 'rm -rf "$SHARD_TMP"' EXIT

# Race + coverage in one pass; the log is parsed for the coverage record
# below (a pipe would hide go test's exit status under plain sh).
go test -race -cover ./... >"$SHARD_TMP/cover.txt"
cat "$SHARD_TMP/cover.txt"
{
	printf '{"bench":"coverage","unix":%s,"packages":{' "$(date +%s)"
	awk '/coverage:/ {
		pct = ""
		for (i = 1; i <= NF; i++) if ($i ~ /%$/) pct = $i
		if (pct == "") next
		sub(/%/, "", pct)
		printf "%s\"%s\":%s", sep, $2, pct
		sep = ","
	}' "$SHARD_TMP/cover.txt"
	printf '}}\n'
} >>"$PWD/BENCH_shard.json"

go test -run NONE -bench 'BenchmarkTable3CodeStats|BenchmarkMotivation' -benchtime 1x .

# Shard-equivalence smoke: two shards + merge == unsharded, byte for byte.
go build -o "$SHARD_TMP/quickstart" ./examples/quickstart
"$SHARD_TMP/quickstart" >"$SHARD_TMP/unsharded.txt"
"$SHARD_TMP/quickstart" -shard 0/2 -shard-out "$SHARD_TMP/s0.json"
"$SHARD_TMP/quickstart" -shard 1/2 -shard-out "$SHARD_TMP/s1.json"
"$SHARD_TMP/quickstart" -merge "$SHARD_TMP/s0.json,$SHARD_TMP/s1.json" >"$SHARD_TMP/merged.txt"
diff "$SHARD_TMP/unsharded.txt" "$SHARD_TMP/merged.txt"

# Incremental-campaign smoke. Generation 1 of the quickstart campaign,
# then a re-run with one mutated compiler flag (-unroll moves the plain
# g++ -O3 row): the warm-started run must report exactly one new and one
# dropped cell — the mutated compilation — and name the flag in the
# report. A same-command second generation must diff empty offline via
# `flit delta`, and `flit gc` must prune only the superseded generation —
# never a file the -warm-start manifest still references.
go build -o "$SHARD_TMP/flit" ./cmd/flit
ART_DIR="$SHARD_TMP/campaign"
mkdir -p "$ART_DIR"
"$SHARD_TMP/quickstart" -shard 0/1 -shard-out "$ART_DIR/gen1.json"
"$SHARD_TMP/quickstart" -unroll -warm-start "$ART_DIR/gen1.json" \
	-delta-out "$SHARD_TMP/delta.json" >"$SHARD_TMP/delta.txt"
grep 'delta: new=1 dropped=1 changed=0' "$SHARD_TMP/delta.txt"
grep funroll-loops "$SHARD_TMP/delta.json" >/dev/null
"$SHARD_TMP/quickstart" -shard 0/1 -shard-out "$ART_DIR/gen2.json"
"$SHARD_TMP/flit" delta -baseline "$ART_DIR/gen1.json" "$ART_DIR/gen2.json" \
	>"$SHARD_TMP/delta-same.txt"
grep 'delta: new=0 dropped=0 changed=0' "$SHARD_TMP/delta-same.txt"
"$SHARD_TMP/flit" gc -dir "$ART_DIR" -keep 1 -dry-run -warm-start "$ART_DIR/gen1.json" \
	| grep "protected $ART_DIR/gen1.json"
test -f "$ART_DIR/gen1.json"
"$SHARD_TMP/flit" gc -dir "$ART_DIR" -keep 1 | grep "pruned $ART_DIR/gen1.json"
test ! -f "$ART_DIR/gen1.json"
test -f "$ART_DIR/gen2.json"

# Speculative-bisect smoke: j1 vs j8 through a real binary, byte for byte.
go build -o "$SHARD_TMP/laghos-bisect" ./examples/laghos-bisect
"$SHARD_TMP/laghos-bisect" -j 1 >"$SHARD_TMP/laghos-j1.txt"
"$SHARD_TMP/laghos-bisect" -j 8 >"$SHARD_TMP/laghos-j8.txt"
diff "$SHARD_TMP/laghos-j1.txt" "$SHARD_TMP/laghos-j8.txt"

# Persistent-store smoke: two processes sharing only a -store directory.
# The second run must reproduce the first byte for byte without building a
# single executable — no artifact export, no -warm-start manifest — and the
# store subcommands must see and prune the persisted entries.
STORE_DIR="$SHARD_TMP/runstore"
"$SHARD_TMP/flit" experiments -j 2 -store "$STORE_DIR" -stats table4 \
	>"$SHARD_TMP/store-cold.txt" 2>"$SHARD_TMP/store-cold-stats.txt"
"$SHARD_TMP/flit" experiments -j 2 -store "$STORE_DIR" -stats table4 \
	>"$SHARD_TMP/store-warm.txt" 2>"$SHARD_TMP/store-warm-stats.txt"
diff "$SHARD_TMP/store-cold.txt" "$SHARD_TMP/store-warm.txt"
grep 'builds: materialized=0' "$SHARD_TMP/store-warm-stats.txt"
grep 'store: hits=[1-9]' "$SHARD_TMP/store-warm-stats.txt"
"$SHARD_TMP/flit" store stats -store "$STORE_DIR" | grep 'corrupt=0'
"$SHARD_TMP/flit" store gc -store "$STORE_DIR" -max-entries 1 | grep 'kept=1'

# Remote-store smoke: `flit store serve` on a loopback port, then two runs
# sharing nothing but the URL — no -store directory, no artifact, no
# manifest. The second must reproduce the first byte for byte with zero
# materialized builds, every hit arriving over the wire. The announced URL
# is read off the server's first stdout line (-addr :0 picks a free port).
REMOTE_DIR="$SHARD_TMP/remotestore"
"$SHARD_TMP/flit" store serve -dir "$REMOTE_DIR" -addr 127.0.0.1:0 \
	>"$SHARD_TMP/serve.txt" 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -rf "$SHARD_TMP"' EXIT
REMOTE_URL=""
for _ in $(seq 1 100); do
	REMOTE_URL=$(sed -n 's|.*on \(http://.*\)|\1|p' "$SHARD_TMP/serve.txt")
	if [ -n "$REMOTE_URL" ]; then break; fi
	sleep 0.1
done
test -n "$REMOTE_URL"
"$SHARD_TMP/flit" experiments -j 2 -remote "$REMOTE_URL" -stats table4 \
	>"$SHARD_TMP/remote-cold.txt" 2>"$SHARD_TMP/remote-cold-stats.txt"
"$SHARD_TMP/flit" experiments -j 2 -remote "$REMOTE_URL" -stats table4 \
	>"$SHARD_TMP/remote-warm.txt" 2>"$SHARD_TMP/remote-warm-stats.txt"
diff "$SHARD_TMP/remote-cold.txt" "$SHARD_TMP/remote-warm.txt"
grep 'builds: materialized=0' "$SHARD_TMP/remote-warm-stats.txt"
grep 'remote: hits=[1-9]' "$SHARD_TMP/remote-warm-stats.txt"
# Graceful shutdown: SIGTERM must drain and exit 0, not die mid-response.
kill "$SERVE_PID"
wait "$SERVE_PID"
grep 'shutting down' "$SHARD_TMP/serve.txt"

# Multi-tenant campaign-coordinator smoke: the full distributed protocol
# through real binaries, including a worker crash, a second campaign
# sharing the coordinator, and a third campaign with a deterministically
# poisoned shard. `flit coord serve` owns a 2-shard table4 campaign;
# worker A leases its shards and stalls forever (FLIT_WORK_STALL) while
# heartbeating, holding table4 open. While it stalls, `flit coord
# status` polls the fleet (a pure read: it must not release anything)
# and `flit coord submit` adds a healthy 2-shard table3 campaign plus a
# 2-shard table2 campaign whose shard 1 is poisoned (FLIT_WORK_FAIL)
# under an attempt budget of 2. Worker B fails the poisoned shard on
# both budgeted attempts — the coordinator quarantines it and declares
# table2 terminally FAILED while table4 is still held, so the status
# views render the quarantine live. Only then is worker A SIGKILLed —
# the crash the lease protocol exists for — and worker B re-leases and
# drains the healthy campaigns. The coordinator exits NON-zero
# (-exit-when-done) naming the quarantined shard, table3 finishes with
# zero re-leases (cross-campaign isolation), both healthy campaigns'
# merged artifact sets are byte-identical to their unsharded runs, and
# merging the failed campaign's partial artifact set must fail naming
# exactly the missing shard.
COORD_DIR="$SHARD_TMP/campaign-coord"
"$SHARD_TMP/flit" coord serve -dir "$COORD_DIR" -addr 127.0.0.1:0 \
	-command "experiments table4" -shards 2 -lease-ttl 2s -exit-when-done \
	>"$SHARD_TMP/coord.txt" 2>&1 &
COORD_PID=$!
trap 'kill "$COORD_PID" 2>/dev/null || true; rm -rf "$SHARD_TMP"' EXIT
COORD_URL=""
for _ in $(seq 1 100); do
	COORD_URL=$(sed -n 's|.*on \(http://.*\)|\1|p' "$SHARD_TMP/coord.txt")
	if [ -n "$COORD_URL" ]; then break; fi
	sleep 0.1
done
test -n "$COORD_URL"
CAMPAIGN4=$(sed -n 's/^campaign \(c[0-9a-f]*\): submitted "experiments table4".*/\1/p' "$SHARD_TMP/coord.txt")
test -n "$CAMPAIGN4"
FLIT_WORK_STALL=60s "$SHARD_TMP/flit" work -coord "$COORD_URL" -j 2 -v \
	-name straggler >"$SHARD_TMP/workA.txt" 2>&1 &
WORKA_PID=$!
for _ in $(seq 1 100); do
	if grep -q 'leased shard' "$SHARD_TMP/workA.txt"; then break; fi
	sleep 0.1
done
grep 'leased shard' "$SHARD_TMP/workA.txt"
# Status is a pure read: polling it mid-stall must not touch the live
# leases (their revival is the heartbeat path's job, reclaim is Lease's).
"$SHARD_TMP/flit" coord status -coord "$COORD_URL" >"$SHARD_TMP/coord-fleet.txt"
grep "campaign $CAMPAIGN4: \"experiments table4\"" "$SHARD_TMP/coord-fleet.txt"
"$SHARD_TMP/flit" coord status -coord "$COORD_URL" -campaign "$CAMPAIGN4" \
	>"$SHARD_TMP/coord-detail.txt"
grep 'leased to straggler' "$SHARD_TMP/coord-detail.txt"
CAMPAIGN3=$("$SHARD_TMP/flit" coord submit -coord "$COORD_URL" \
	-command "experiments table3" -shards 2 | sed -n 's/^campaign \(c[0-9a-f]*\):.*/\1/p')
test -n "$CAMPAIGN3"
CAMPAIGN2=$("$SHARD_TMP/flit" coord submit -coord "$COORD_URL" \
	-command "experiments table2" -shards 2 -max-shard-attempts 2 \
	| sed -n 's/^campaign \(c[0-9a-f]*\):.*/\1/p')
test -n "$CAMPAIGN2"
FLIT_WORK_FAIL=table2:1 "$SHARD_TMP/flit" work -coord "$COORD_URL" -j 2 -v \
	-stats -name finisher >"$SHARD_TMP/workB.txt" 2>"$SHARD_TMP/workB-stats.txt" &
WORKB_PID=$!
# Worker A still holds table4, so the tenancy cannot reach all-terminal:
# the quarantine of table2 shard 1 stays observable through the status
# views for as long as the poll needs.
QUARANTINED=""
for _ in $(seq 1 300); do
	"$SHARD_TMP/flit" coord status -coord "$COORD_URL" >"$SHARD_TMP/coord-fail-fleet.txt"
	if grep -q 'quarantined' "$SHARD_TMP/coord-fail-fleet.txt"; then
		QUARANTINED=yes
		break
	fi
	sleep 0.1
done
test -n "$QUARANTINED"
grep "campaign $CAMPAIGN2: .*1 quarantined.*FAILED:" "$SHARD_TMP/coord-fail-fleet.txt"
grep 'shards \[1\] quarantined after exhausting their attempt budget' "$SHARD_TMP/coord-fail-fleet.txt"
"$SHARD_TMP/flit" coord status -coord "$COORD_URL" -campaign "$CAMPAIGN2" \
	>"$SHARD_TMP/coord-fail-detail.txt"
grep 'attempt budget 2' "$SHARD_TMP/coord-fail-detail.txt"
grep 'shard 1: QUARANTINED after 2 attempts' "$SHARD_TMP/coord-fail-detail.txt"
grep 'FLIT_WORK_FAIL: injected deterministic failure' "$SHARD_TMP/coord-fail-detail.txt"
# Now the crash the lease protocol exists for: SIGKILL the straggler so
# its table4 leases expire and worker B re-leases and drains them.
kill -9 "$WORKA_PID"
wait "$WORKB_PID"
grep 'campaigns terminal (5 shards completed here, 0 lost to re-lease, 2 failed)' "$SHARD_TMP/workB.txt"
grep 'quarantined (attempt budget exhausted)' "$SHARD_TMP/workB-stats.txt"
grep 'coord: completed=5 lost=0 failed=2' "$SHARD_TMP/workB-stats.txt"
# A terminally failed campaign makes the coordinator's own exit non-zero.
COORD_EXIT=0
wait "$COORD_PID" || COORD_EXIT=$?
test "$COORD_EXIT" -ne 0
grep "campaign $CAMPAIGN4: 2/2 shards complete, [1-9][0-9]* re-leases" "$SHARD_TMP/coord.txt"
grep "campaign $CAMPAIGN3: 2/2 shards complete, 0 re-leases" "$SHARD_TMP/coord.txt"
grep "campaign $CAMPAIGN2: FAILED" "$SHARD_TMP/coord.txt"
grep 'failed terminally' "$SHARD_TMP/coord.txt"
test "$(grep -c 'artifact set validated' "$SHARD_TMP/coord.txt")" -eq 2
"$SHARD_TMP/flit" experiments -j 2 table4 >"$SHARD_TMP/coord-unsharded.txt"
"$SHARD_TMP/flit" merge -j 2 "$COORD_DIR/artifacts/$CAMPAIGN4"/shard-*.json \
	>"$SHARD_TMP/coord-merged.txt"
diff "$SHARD_TMP/coord-unsharded.txt" "$SHARD_TMP/coord-merged.txt"
"$SHARD_TMP/flit" experiments -j 2 table3 >"$SHARD_TMP/coord-unsharded3.txt"
"$SHARD_TMP/flit" merge -j 2 "$COORD_DIR/artifacts/$CAMPAIGN3"/shard-*.json \
	>"$SHARD_TMP/coord-merged3.txt"
diff "$SHARD_TMP/coord-unsharded3.txt" "$SHARD_TMP/coord-merged3.txt"
# The failed campaign's surviving partial artifact set refuses to merge,
# naming the quarantined shard exactly.
FAILMERGE=0
"$SHARD_TMP/flit" merge "$COORD_DIR/artifacts/$CAMPAIGN2"/shard-*.json \
	>/dev/null 2>"$SHARD_TMP/coord-fail-merge.txt" || FAILMERGE=$?
test "$FAILMERGE" -ne 0
grep 'missing shard indices \[1\]' "$SHARD_TMP/coord-fail-merge.txt"

# Record the engine's perf trajectory (appends one JSON line per bench run).
BENCH_SHARD_JSON="$PWD/BENCH_shard.json" \
	go test -run NONE -bench 'BenchmarkParallelEngineSweep|BenchmarkSpeculativeBisect|BenchmarkWarmPath|BenchmarkPersistentStore|BenchmarkRemoteStore|BenchmarkCoordCampaign' -benchtime 1x .
