package exec

import (
	"testing"
)

func TestParseShard(t *testing.T) {
	tests := []struct {
		in      string
		want    Shard
		wantErr bool
	}{
		{in: "", want: Shard{}},
		{in: "0/1", want: Shard{Index: 0, Count: 1}},
		{in: "0/4", want: Shard{Index: 0, Count: 4}},
		{in: "3/4", want: Shard{Index: 3, Count: 4}},
		{in: "4/4", wantErr: true},
		{in: "-1/4", wantErr: true},
		{in: "0/0", wantErr: true},
		{in: "0", wantErr: true},
		{in: "a/b", wantErr: true},
		{in: "1/2/3", wantErr: true},
	}
	for _, tt := range tests {
		got, err := ParseShard(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParseShard(%q) = %v, want error", tt.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseShard(%q): %v", tt.in, err)
			continue
		}
		if got != tt.want {
			t.Errorf("ParseShard(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

// TestShardPartition: for every job index space, the shards of a count N
// partition it — every index owned by exactly one shard, and Indices agrees
// with Owns.
func TestShardPartition(t *testing.T) {
	const n = 97 // deliberately not a multiple of any tested count
	for _, count := range []int{1, 2, 3, 4, 8} {
		owners := make([]int, n)
		for i := range owners {
			owners[i] = -1
		}
		for idx := 0; idx < count; idx++ {
			s := Shard{Index: idx, Count: count}
			for _, i := range s.Indices(n) {
				if !s.Owns(i) {
					t.Fatalf("shard %s: Indices yields %d but Owns(%d) is false", s, i, i)
				}
				if owners[i] != -1 {
					t.Fatalf("index %d owned by shards %d and %d of %d", i, owners[i], idx, count)
				}
				owners[i] = idx
			}
		}
		for i, o := range owners {
			if o == -1 {
				t.Errorf("index %d of %d owned by no shard of %d", i, n, count)
			}
		}
	}
}

// TestShardZeroValueOwnsAll: the zero Shard is a valid unsharded run.
func TestShardZeroValueOwnsAll(t *testing.T) {
	var s Shard
	if s.IsSharded() {
		t.Error("zero shard reports sharded")
	}
	if err := s.Validate(); err != nil {
		t.Errorf("zero shard invalid: %v", err)
	}
	for i := 0; i < 10; i++ {
		if !s.Owns(i) {
			t.Errorf("zero shard does not own %d", i)
		}
	}
	if got := len(s.Indices(5)); got != 5 {
		t.Errorf("zero shard Indices(5) has %d entries", got)
	}
	if s.String() != "0/1" {
		t.Errorf("zero shard String = %q", s.String())
	}
}

func TestShardStringRoundTrip(t *testing.T) {
	for _, s := range []Shard{{0, 2}, {1, 2}, {7, 8}} {
		got, err := ParseShard(s.String())
		if err != nil || got != s {
			t.Errorf("round trip %v -> %q -> %v (%v)", s, s.String(), got, err)
		}
	}
}
