package experiments

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"strings"

	"repro/internal/comp"
	"repro/internal/exec"
	"repro/internal/store"
)

// This file is the programmatic form of the CLI's subcommands: every
// renderer `flit` dispatches to, plus the canonical-command replay that
// `flit merge` and the campaign coordinator's workers both run. It lives
// here rather than in cmd/flit so that a worker process can execute a
// recorded campaign command — the exact []string a shard artifact or a
// coordinator grant carries — without shelling out to its own binary.

// ParseCompilation parses the CLI's "compiler -Olevel [switches]" form.
func ParseCompilation(s string) (comp.Compilation, error) {
	fields := strings.Fields(s)
	if len(fields) < 2 {
		return comp.Compilation{}, fmt.Errorf("compilation %q: want 'compiler -Olevel [switches]'", s)
	}
	return comp.Compilation{
		Compiler: fields[0],
		OptLevel: fields[1],
		Switches: strings.Join(fields[2:], " "),
	}, nil
}

// RenderRun writes the `flit run` compilation-matrix table, optionally
// restricted to one test.
func RenderRun(eng *Engine, test string, w io.Writer) error {
	res, err := eng.Results()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-12s %-46s %-10s %-12s %s\n", "test", "compilation", "speedup", "compare", "class")
	for _, name := range res.TestNames() {
		if test != "" && name != test {
			continue
		}
		for _, rr := range res.SortedBySpeed(name) {
			class := "bitwise-equal"
			if rr.Variable() {
				class = "VARIABLE"
			}
			fmt.Fprintf(w, "%-12s %-46s %-10.3f %-12.3g %s\n",
				name, rr.Comp, res.Speedup(rr), rr.CompareVal, class)
		}
	}
	return nil
}

// RenderBisect writes one `flit bisect` report, sharded when the engine is.
func RenderBisect(eng *Engine, test string, variable comp.Compilation,
	k int, shard exec.Shard, w io.Writer) error {
	wf := eng.Workflow()
	tc := wf.TestByName(test)
	if tc == nil {
		return fmt.Errorf("unknown test %q (Example01..Example19)", test)
	}
	report, err := wf.BisectSharded(tc, variable, k, shard)
	eng.NoteBisect(report)
	if err != nil {
		return err
	}
	if report.NoVariability {
		fmt.Fprintln(w, "no variability attributable to compiled files",
			"(it may come from the link step)")
		return nil
	}
	fmt.Fprintf(w, "executions: %d\n", report.Execs)
	for _, ff := range report.Files {
		fmt.Fprintf(w, "file %-22s magnitude %-12.4g symbols: %s\n", ff.File, ff.Value, ff.Status)
		for _, sf := range ff.Symbols {
			fmt.Fprintf(w, "    %-40s %.4g\n", sf.Item, sf.Value)
		}
	}
	return nil
}

// RenderExperiments writes a sequence of named experiment sections.
func RenderExperiments(eng *Engine, names []string, w io.Writer) error {
	for _, name := range names {
		fmt.Fprintf(w, "=== %s ===\n", name)
		if err := RunExperiment(eng, name, w); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// RunExperiment writes one named experiment's output — the CLI's
// `flit experiments <name>` body.
func RunExperiment(eng *Engine, name string, w io.Writer) error {
	switch name {
	case "table1":
		rows, err := eng.Table1()
		if err != nil {
			return err
		}
		fmt.Fprint(w, RenderTable1(rows))
	case "figure4":
		for _, ex := range []int{5, 9} {
			s, err := eng.Figure4(ex)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s: %d compilations\n", s.Example, len(s.Points))
			if s.HasEqual {
				fmt.Fprintf(w, "  fastest bitwise equal: %-40s speedup %.3f\n",
					s.FastestEqual.Comp, s.FastestEqual.Speedup)
			}
			if s.HasVariable {
				fmt.Fprintf(w, "  fastest variable:      %-40s speedup %.3f  variability %.3g\n",
					s.FastestVariable.Comp, s.FastestVariable.Speedup, s.FastestVariable.Error)
			}
		}
	case "figure5":
		rows, err := eng.Figure5()
		if err != nil {
			return err
		}
		repro := 0
		fmt.Fprintf(w, "%-8s %-10s %-10s %-10s %-12s %s\n",
			"example", "g++", "clang++", "icpc", "variable", "fastest-reproducible")
		for _, r := range rows {
			bar := func(c string) string {
				if v, ok := r.EqualByCompiler[c]; ok {
					return fmt.Sprintf("%.3f", v)
				}
				return "-"
			}
			va := "-"
			if r.HasVariable {
				va = fmt.Sprintf("%.3f", r.FastestVariable)
			}
			if r.FastestIsReproducible {
				repro++
			}
			fmt.Fprintf(w, "%-8d %-10s %-10s %-10s %-12s %v\n", r.Example,
				bar(comp.GCC), bar(comp.Clang), bar(comp.ICPC), va, r.FastestIsReproducible)
		}
		fmt.Fprintf(w, "%d of 19 examples fastest with a bitwise-reproducible compilation (paper: 14)\n", repro)
	case "figure6":
		rows, err := eng.Figure6()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8s %-14s %-12s %-12s %s\n", "example", "# variable/244", "min err", "median err", "max err")
		for _, r := range rows {
			if r.VariableComps == 0 {
				fmt.Fprintf(w, "%-8d %-14d (invariant)\n", r.Example, 0)
				continue
			}
			fmt.Fprintf(w, "%-8d %-14d %-12.3g %-12.3g %.3g\n",
				r.Example, r.VariableComps, r.MinErr, r.MedianErr, r.MaxErr)
		}
	case "table2":
		rows, total, err := eng.Table2(0)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "variable (test, compilation) pairs bisected: %d\n", total)
		fmt.Fprint(w, RenderTable2(rows))
	case "table3":
		fmt.Fprintf(w, "%-30s %-12s %s\n", "metric", "measured", "paper")
		for _, r := range Table3() {
			fmt.Fprintf(w, "%-30s %-12.5g %.6g\n", r.Metric, r.Measured, r.Paper)
		}
	case "findings":
		fs, err := eng.Findings()
		if err != nil {
			return err
		}
		for _, f := range fs {
			fmt.Fprintf(w, "Example %d: max relative error %.3g, %d compilations examined\n",
				f.Example, f.MaxRelErr, len(f.Compilations))
			for _, fn := range f.Functions {
				fmt.Fprintf(w, "    %s\n", fn)
			}
		}
	case "motivation":
		mo, err := RunMotivation()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "xlc++ -O2: energy norm %.1f, %.1f s\n", mo.NormO2, mo.SecondsO2)
		fmt.Fprintf(w, "xlc++ -O3: energy norm %.1f, %.1f s\n", mo.NormO3, mo.SecondsO3)
		fmt.Fprintf(w, "relative difference %.1f%% (paper: 11.2%%), speedup %.2fx (paper: 2.42x)\n",
			100*mo.RelDiff, mo.SpeedupFactor)
	case "table4":
		rows, err := eng.Table4()
		if err != nil {
			return err
		}
		fmt.Fprint(w, RenderTable4(rows))
	case "laghos-nan":
		res, err := eng.RunNaNBug()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "executions: %d (paper: 45)\nsymbols:\n", res.Execs)
		for _, s := range res.Symbols {
			fmt.Fprintf(w, "    %s\n", s)
		}
	case "table5":
		sum, err := eng.Table5(1)
		if err != nil {
			return err
		}
		fmt.Fprint(w, RenderTable5(sum))
	case "table5-sample":
		sum, err := eng.Table5(13)
		if err != nil {
			return err
		}
		fmt.Fprint(w, RenderTable5(sum))
	case "mpi":
		rows, err := eng.MPIStudy(4, 3)
		if err != nil {
			return err
		}
		fmt.Fprint(w, RenderMPI(rows))
	case "sweep":
		digest, err := eng.SweepDigest()
		if err != nil {
			return err
		}
		fmt.Fprint(w, digest)
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}

// RunCommand replays a canonical recorded command — the []string a shard
// artifact records and a coordinator grant carries — against eng, writing
// the command's normal output to w. The engine's own shard setting
// applies, so the same entry point serves merge replays (unsharded) and
// coordinator workers (sharded).
func RunCommand(eng *Engine, command []string, w io.Writer) error {
	if len(command) == 0 {
		return errors.New("no command to run")
	}
	rest := command[1:]
	switch command[0] {
	case "run":
		fs := flag.NewFlagSet("replay/run", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		test := fs.String("test", "", "")
		if err := fs.Parse(rest); err != nil {
			return fmt.Errorf("replaying %q: %v", command, err)
		}
		return RenderRun(eng, *test, w)
	case "bisect":
		fs := flag.NewFlagSet("replay/bisect", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		test := fs.String("test", "", "")
		compStr := fs.String("comp", "", "")
		k := fs.Int("k", 0, "")
		if err := fs.Parse(rest); err != nil {
			return fmt.Errorf("replaying %q: %v", command, err)
		}
		variable, err := ParseCompilation(*compStr)
		if err != nil {
			return err
		}
		return RenderBisect(eng, *test, variable, *k, eng.Shard(), w)
	case "experiments":
		return RenderExperiments(eng, rest, w)
	default:
		return fmt.Errorf("unknown command %q", command[0])
	}
}

// RunShard is the coordinator worker's unit of work: execute one shard of
// a recorded campaign command on a fresh engine and return the exported
// shard artifact as JSON. The artifact is deliberately NOT stamped — a
// stamp would embed wall-clock provenance, and the coordinator's
// last-writer-wins completion discipline depends on two workers producing
// byte-identical artifacts for the same shard. tiers (usually the
// coordinator's own object store, optionally fronted by a local disk
// cache) attach as the engine cache's persistent tiers, so a re-leased
// shard replays its predecessor's written-through results as warm hits.
func RunShard(command []string, shard exec.Shard, j int, tiers ...store.Store) ([]byte, error) {
	if err := shard.Validate(); err != nil {
		return nil, err
	}
	eng := NewEngineCap(j, 0)
	eng.SetShard(shard)
	eng.AttachStoreTiers(tiers...)
	if err := RunCommand(eng, command, io.Discard); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := eng.ExportArtifact(command).WriteJSON(&buf); err != nil {
		return nil, fmt.Errorf("encoding shard artifact: %w", err)
	}
	return buf.Bytes(), nil
}
