// laghos-bisect reproduces the paper's Laghos case study (§1 and §3.4): the
// 11.2%/2.42x motivating incident, the automated re-discovery of the
// NaN-producing XOR-swap macro, and the digit-limited Bisect that isolates
// the exact q == 0.0 comparison — including the developers' epsilon fix.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/laghos"
	"repro/internal/comp"
	"repro/internal/experiments"
	"repro/internal/link"
)

func main() {
	// The motivating example: xlc++ -O2 -> -O3.
	mo, err := experiments.RunMotivation()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Motivating incident (paper §1):")
	fmt.Printf("  xlc++ -O2: energy norm %10.1f   runtime %5.1f s\n", mo.NormO2, mo.SecondsO2)
	fmt.Printf("  xlc++ -O3: energy norm %10.1f   runtime %5.1f s\n", mo.NormO3, mo.SecondsO3)
	fmt.Printf("  relative difference %.1f%% (paper: 11.2%%), speedup %.2fx (paper: 2.42x)\n\n",
		100*mo.RelDiff, mo.SpeedupFactor)

	// The public-branch NaN bug.
	nan, err := experiments.RunNaNBug()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NaN bug re-discovery: %d executions (paper: 45); symbols:\n", nan.Execs)
	for _, s := range nan.Symbols {
		fmt.Printf("  -> %s\n", s)
	}

	// Table 4: digit-limited bisect against three baselines.
	fmt.Println("\nTable 4 — Bisect statistics (files/funcs/runs for k = 1, 2, all):")
	rows, err := experiments.Table4()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderTable4(rows))

	// The developers' fix restores agreement.
	fixed := laghos.Options{EpsilonFix: true}
	base, _ := link.FullBuild(laghos.Program(), comp.Compilation{Compiler: comp.XLC, OptLevel: "-O2"})
	o3, _ := link.FullBuild(laghos.Program(), comp.Compilation{Compiler: comp.XLC, OptLevel: "-O3"})
	mb, _ := base.NewMachine()
	m3, _ := o3.NewMachine()
	sb := laghos.Simulate(mb, fixed, 0.4)
	s3 := laghos.Simulate(m3, fixed, 0.4)
	nb := laghos.EnergyNorm(mb, sb.E)
	n3 := laghos.EnergyNorm(m3, s3.E)
	fmt.Printf("\nwith the epsilon-comparison fix: norms %.6g vs %.6g (%.2g%% apart)\n",
		nb, n3, 100*abs(n3-nb)/nb)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
