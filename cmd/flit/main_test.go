package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/comp"
)

func TestParseCompilation(t *testing.T) {
	tests := []struct {
		name    string
		in      string
		want    comp.Compilation
		wantErr bool
	}{
		{
			name: "compiler and level",
			in:   "g++ -O2",
			want: comp.Compilation{Compiler: "g++", OptLevel: "-O2"},
		},
		{
			name: "single switch",
			in:   "g++ -O3 -mavx2",
			want: comp.Compilation{Compiler: "g++", OptLevel: "-O3", Switches: "-mavx2"},
		},
		{
			name: "multiple switches joined",
			in:   "icpc -O2 -fp-model fast=2",
			want: comp.Compilation{Compiler: "icpc", OptLevel: "-O2", Switches: "-fp-model fast=2"},
		},
		{
			name: "extra whitespace",
			in:   "  clang++   -O1  ",
			want: comp.Compilation{Compiler: "clang++", OptLevel: "-O1"},
		},
		{name: "empty", in: "", wantErr: true},
		{name: "only compiler", in: "g++", wantErr: true},
		{name: "only whitespace", in: "   ", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := parseCompilation(tt.in)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("parseCompilation(%q) = %v, want error", tt.in, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseCompilation(%q): %v", tt.in, err)
			}
			if got != tt.want {
				t.Errorf("parseCompilation(%q) = %+v, want %+v", tt.in, got, tt.want)
			}
		})
	}
}

func TestRunUsageExit(t *testing.T) {
	tests := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string // substring expected on stderr
	}{
		{name: "no arguments", args: nil, wantCode: 2, wantErr: "usage:"},
		{name: "unknown subcommand", args: []string{"frobnicate"}, wantCode: 2, wantErr: "usage:"},
		{name: "bisect without flags", args: []string{"bisect"}, wantCode: 1,
			wantErr: "bisect requires -test and -comp"},
		{name: "bisect missing comp", args: []string{"bisect", "-test", "Example13"}, wantCode: 1,
			wantErr: "bisect requires -test and -comp"},
		{name: "bisect malformed compilation", args: []string{"bisect", "-test", "Example13", "-comp", "g++"},
			wantCode: 1, wantErr: "want 'compiler -Olevel"},
		{name: "run with unknown flag", args: []string{"run", "-bogus"}, wantCode: 2,
			wantErr: "flag provided but not defined"},
		{name: "bisect with bad j value", args: []string{"bisect", "-j", "x"}, wantCode: 2,
			wantErr: "invalid value"},
		{name: "experiments unknown name", args: []string{"experiments", "no-such-table"}, wantCode: 1,
			wantErr: `unknown experiment "no-such-table"`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tt.args, &stdout, &stderr)
			if code != tt.wantCode {
				t.Errorf("run(%v) = %d, want %d (stderr: %s)", tt.args, code, tt.wantCode, stderr.String())
			}
			if !strings.Contains(stderr.String(), tt.wantErr) {
				t.Errorf("stderr %q does not contain %q", stderr.String(), tt.wantErr)
			}
			// Flag-parse diagnostics come from the FlagSet itself and must
			// not be echoed a second time by the dispatcher.
			if n := strings.Count(stderr.String(), tt.wantErr); n > 1 {
				t.Errorf("diagnostic %q printed %d times", tt.wantErr, n)
			}
		})
	}
}

// TestHelpExitsZero: an explicit -h prints usage and succeeds, matching
// the conventional contract scripts rely on.
func TestHelpExitsZero(t *testing.T) {
	for _, sub := range []string{"run", "bisect", "experiments"} {
		var stdout, stderr bytes.Buffer
		if code := run([]string{sub, "-h"}, &stdout, &stderr); code != 0 {
			t.Errorf("%s -h: exit %d, want 0", sub, code)
		}
		if !strings.Contains(stderr.String(), "-j int") {
			t.Errorf("%s -h: usage not printed: %q", sub, stderr.String())
		}
	}
}

// TestExperimentsSubcommand drives a cheap experiment end to end through
// the real dispatcher, including the -j flag.
func TestExperimentsSubcommand(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"experiments", "-j", "2", "table3"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"=== table3 ===", "source files", "total functions"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestBisectSubcommandUnknownTest validates the test-name check behind
// fully-formed flags.
func TestBisectSubcommandUnknownTest(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"bisect", "-test", "Example99", "-comp", "g++ -O3"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), `unknown test "Example99"`) {
		t.Errorf("stderr: %s", stderr.String())
	}
}

// TestBisectSubcommandEndToEnd root-causes Example13 under an FMA-enabling
// compilation — Finding 2's blame must appear on stdout.
func TestBisectSubcommandEndToEnd(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"bisect", "-j", "4", "-test", "Example13", "-comp", "g++ -O3 -mavx2 -mfma"},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "executions:") {
		t.Errorf("missing execution count:\n%s", out)
	}
	if !strings.Contains(out, "AddMult_a_AAt") {
		t.Errorf("Finding 2 blame (AddMult_a_AAt) not reported:\n%s", out)
	}
}

// TestMergeShardedExperimentsEquivalence drives the full distributed
// protocol through the real CLI: two `experiments -shard i/2` invocations
// writing artifacts, then `merge` replaying them — stdout must be
// byte-identical to the unsharded invocation. table4 exercises the Laghos
// bisect fan-out (cheap but non-trivial: 12 row configurations, shared
// cached executions across comparison regimes).
func TestMergeShardedExperimentsEquivalence(t *testing.T) {
	dir := t.TempDir()
	var want, stderr bytes.Buffer
	if code := run([]string{"experiments", "-j", "2", "table4"}, &want, &stderr); code != 0 {
		t.Fatalf("unsharded run: exit %d, stderr: %s", code, stderr.String())
	}
	paths := []string{filepath.Join(dir, "s0.json"), filepath.Join(dir, "s1.json")}
	for i, p := range paths {
		var stdout bytes.Buffer
		stderr.Reset()
		code := run([]string{"experiments", "-j", "2",
			"-shard", fmt.Sprintf("%d/2", i), "-shard-out", p, "table4"}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("shard %d: exit %d, stderr: %s", i, code, stderr.String())
		}
		if !strings.Contains(stdout.String(), "shard "+fmt.Sprintf("%d/2", i)) {
			t.Errorf("shard %d printed no receipt: %q", i, stdout.String())
		}
		if strings.Contains(stdout.String(), "baseline") {
			t.Errorf("shard %d leaked table output to stdout: %q", i, stdout.String())
		}
	}
	var got bytes.Buffer
	stderr.Reset()
	if code := run(append([]string{"merge", "-stats"}, paths...), &got, &stderr); code != 0 {
		t.Fatalf("merge: exit %d, stderr: %s", code, stderr.String())
	}
	if got.String() != want.String() {
		t.Errorf("merged output differs from unsharded run:\n--- merged ---\n%s\n--- unsharded ---\n%s",
			got.String(), want.String())
	}
	// -stats reports the replay's cache behavior on stderr; a correct merge
	// answers every run from the artifacts. Assert on the "cache runs:"
	// line specifically — the costs line reads misses=0 even when run-key
	// replay is broken.
	runsLine := ""
	for _, line := range strings.Split(stderr.String(), "\n") {
		if strings.HasPrefix(line, "cache runs:") {
			runsLine = line
		}
	}
	if runsLine == "" || !strings.Contains(runsLine, "misses=0") {
		t.Errorf("merge -stats run cache reports recomputation:\n%s", stderr.String())
	}
}

// TestMergeRejectsBadShardSets: the CLI must refuse incomplete sets and
// foreign engine versions with a non-zero exit.
func TestMergeRejectsBadShardSets(t *testing.T) {
	dir := t.TempDir()
	p0 := filepath.Join(dir, "s0.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"experiments", "-shard", "0/2", "-shard-out", p0, "table4"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("shard run failed: %s", stderr.String())
	}

	stderr.Reset()
	if code := run([]string{"merge", p0}, &stdout, &stderr); code != 1 {
		t.Errorf("merging 1 of 2 shards: exit %d, want 1 (stderr: %s)", code, stderr.String())
	}

	// Corrupt the engine version and present a "complete" single-shard set.
	raw, err := os.ReadFile(p0)
	if err != nil {
		t.Fatal(err)
	}
	foreign := strings.Replace(string(raw), `"engine": "flit-engine/`, `"engine": "flit-engine/0-foreign`, 1)
	if foreign == string(raw) {
		t.Fatal("test could not rewrite the engine version")
	}
	foreign = strings.Replace(foreign, `"count": 2`, `"count": 1`, 1)
	if !strings.Contains(foreign, `"count": 1`) {
		t.Fatal("test could not rewrite the shard count")
	}
	pf := filepath.Join(dir, "foreign.json")
	if err := os.WriteFile(pf, []byte(foreign), 0o644); err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	if code := run([]string{"merge", pf}, &stdout, &stderr); code != 1 {
		t.Errorf("merging foreign engine version: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "engine") {
		t.Errorf("rejection does not name the engine version: %s", stderr.String())
	}

	stderr.Reset()
	if code := run([]string{"merge"}, &stdout, &stderr); code != 1 {
		t.Errorf("merge with no artifacts: exit %d, want 1", code)
	}
}

// TestShardRequiresShardOut: a -shard run without -shard-out would compute
// and then discard a shard's work; the CLI refuses up front.
func TestShardRequiresShardOut(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"run", "-shard", "0/2"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "-shard-out") {
		t.Errorf("stderr: %s", stderr.String())
	}
	stderr.Reset()
	if code := run([]string{"run", "-shard", "2/2", "-shard-out", "x.json"}, &stdout, &stderr); code != 1 {
		t.Fatalf("bad shard index: exit %d, want 1", code)
	}
	// A capped cache would export an incomplete artifact; the combination
	// is rejected up front.
	stderr.Reset()
	code := run([]string{"run", "-shard", "0/2", "-shard-out", "x.json", "-cache-cap", "10"}, &stdout, &stderr)
	if code != 1 || !strings.Contains(stderr.String(), "-cache-cap") {
		t.Errorf("shard with cache-cap: exit %d, stderr %q", code, stderr.String())
	}
}

// TestShardZeroOfOneExportsArtifact: "0/1" is the valid degenerate shard
// set — it must write an artifact (not silently fall back to a plain run)
// and merge back byte-identically.
func TestShardZeroOfOneExportsArtifact(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "s.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"experiments", "-shard", "0/1", "-shard-out", p, "table3"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("0/1 run wrote no artifact: %v", err)
	}
	if strings.Contains(stdout.String(), "=== table3 ===") {
		t.Error("0/1 shard leaked normal output to stdout")
	}
	var want, got bytes.Buffer
	if code := run([]string{"experiments", "table3"}, &want, &stderr); code != 0 {
		t.Fatal(stderr.String())
	}
	if code := run([]string{"merge", p}, &got, &stderr); code != 0 {
		t.Fatalf("merge of single artifact: exit %d, stderr: %s", code, stderr.String())
	}
	if got.String() != want.String() {
		t.Error("merged 0/1 output differs from plain run")
	}
}

// TestWarmStartSeedsEngineCache drives the -warm-start flag end to end: a
// 0/1 shard artifact (the complete result set) warm-starts a fresh
// invocation, which must answer every evaluation from the cache (stderr
// misses=0) and print output byte-identical to a cold run.
func TestWarmStartSeedsEngineCache(t *testing.T) {
	dir := t.TempDir()
	art := filepath.Join(dir, "warm.json")
	var want, stdout, stderr bytes.Buffer
	if code := run([]string{"experiments", "-j", "2", "table4"}, &want, &stderr); code != 0 {
		t.Fatalf("cold run: exit %d, stderr: %s", code, stderr.String())
	}
	stderr.Reset()
	if code := run([]string{"experiments", "-shard", "0/1", "-shard-out", art, "table4"}, &stdout, &stderr); code != 0 {
		t.Fatalf("artifact export: exit %d, stderr: %s", code, stderr.String())
	}
	var got bytes.Buffer
	stderr.Reset()
	if code := run([]string{"experiments", "-j", "2", "-warm-start", art, "-stats", "table4"}, &got, &stderr); code != 0 {
		t.Fatalf("warm run: exit %d, stderr: %s", code, stderr.String())
	}
	if got.String() != want.String() {
		t.Errorf("warm-started output differs from cold run:\n--- warm ---\n%s\n--- cold ---\n%s",
			got.String(), want.String())
	}
	runsLine := ""
	for _, line := range strings.Split(stderr.String(), "\n") {
		if strings.HasPrefix(line, "cache runs:") {
			runsLine = line
		}
	}
	if runsLine == "" || !strings.Contains(runsLine, "misses=0") {
		t.Errorf("warm-started run recomputed evaluations:\n%s", stderr.String())
	}

	// A missing artifact fails up front with a diagnostic naming the flag.
	stderr.Reset()
	if code := run([]string{"experiments", "-warm-start", filepath.Join(dir, "nope.json"), "table3"},
		&stdout, &stderr); code != 1 {
		t.Fatalf("missing warm-start artifact: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "warm-start") {
		t.Errorf("stderr does not name -warm-start: %s", stderr.String())
	}
}

// TestBisectStatsOnStderr: -stats surfaces the two bisect counters — the
// paper's deterministic execution count and the speculative extra — after
// a bisect subcommand.
func TestBisectStatsOnStderr(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"bisect", "-j", "4", "-stats", "-test", "Example13",
		"-comp", "g++ -O3 -mavx2 -mfma"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "bisect: searches=1 paper-execs=") {
		t.Errorf("-stats missing bisect counters: %s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "spec-execs=") {
		t.Errorf("-stats missing speculative counter: %s", stderr.String())
	}
}
