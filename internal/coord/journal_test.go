package coord_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/flit"
)

// v1Journal is the exact PR 8 single-campaign journal shape, written by
// hand because the current build only reads it.
type v1Journal struct {
	Version  int      `json:"version"`
	Spec     v1Spec   `json:"spec"`
	Seq      int64    `json:"seq"`
	Releases int64    `json:"releases"`
	Shards   []v1Shrd `json:"shards"`
}

type v1Spec struct {
	Engine  string   `json:"engine"`
	Command []string `json:"command"`
	Shards  int      `json:"shards"`
}

type v1Shrd struct {
	Done         bool   `json:"done,omitempty"`
	Artifact     string `json:"artifact,omitempty"`
	LeaseID      string `json:"lease_id,omitempty"`
	Worker       string `json:"worker,omitempty"`
	ExpiryUnixMS int64  `json:"expiry_unix_ms,omitempty"`
}

// writeV1Dir lays out a PR 8 coordinator directory: flat artifacts/ with
// shard 0 completed (a real artifact), shard 1 under a live lease.
func writeV1Dir(t *testing.T, engine string) (dir string, art0 []byte) {
	t.Helper()
	dir = t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "artifacts"), 0o755); err != nil {
		t.Fatal(err)
	}
	art0, err := experiments.RunShard(campaignCommand, exec.Shard{Index: 0, Count: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "artifacts", "shard-0.json"), art0, 0o644); err != nil {
		t.Fatal(err)
	}
	j := v1Journal{
		Version:  1,
		Spec:     v1Spec{Engine: engine, Command: campaignCommand, Shards: 2},
		Seq:      7,
		Releases: 3,
		Shards: []v1Shrd{
			{Done: true, Artifact: "shard-0.json"},
			{LeaseID: "L7", Worker: "w-old", ExpiryUnixMS: time.Now().Add(time.Hour).UnixMilli()},
		},
	}
	raw, err := json.Marshal(j)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "coord.json"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return dir, art0
}

// TestJournalV1Migration: a PR 8 single-campaign coord.json resumes as a
// one-campaign tenancy byte-compatibly — done shards stay done (their
// artifact files move into the per-campaign directory), live lease IDs
// keep working, and the straggler counter carries over.
func TestJournalV1Migration(t *testing.T) {
	dir, _ := writeV1Dir(t, flit.EngineVersion)
	c, err := coord.New(dir, coord.Options{LeaseTTL: time.Minute})
	if err != nil {
		t.Fatalf("migrating a v1 journal: %v", err)
	}
	wantID := coord.CampaignID(coord.Spec{Engine: flit.EngineVersion, Command: campaignCommand, Shards: 2})
	infos := c.Campaigns()
	if len(infos) != 1 || infos[0].ID != wantID {
		t.Fatalf("migrated tenancy = %+v, want one campaign %s", infos, wantID)
	}
	st, err := c.Status(wantID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 1 || len(st.Completed) != 1 || st.Completed[0] != 0 {
		t.Fatalf("migrated completions: %+v, want shard 0 done", st)
	}
	if st.Releases != 3 {
		t.Fatalf("migrated releases = %d, want 3", st.Releases)
	}
	if len(st.Leases) != 1 || st.Leases[0].LeaseID != "L7" || st.Leases[0].Shard != 1 {
		t.Fatalf("migrated leases: %+v, want L7 on shard 1", st.Leases)
	}
	// The artifact moved into the campaign's directory.
	if _, err := os.Stat(filepath.Join(c.ArtifactDir(wantID), "shard-0.json")); err != nil {
		t.Fatalf("migrated artifact not in campaign dir: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "artifacts", "shard-0.json")); !os.IsNotExist(err) {
		t.Fatalf("migrated artifact still at the v1 path: %v", err)
	}
	// The live lease keeps working: the old worker heartbeats and
	// completes under its pre-migration lease ID.
	if err := c.Heartbeat(wantID, "w-old", "L7", 1); err != nil {
		t.Fatalf("heartbeat on a migrated lease: %v", err)
	}
	art1, err := experiments.RunShard(campaignCommand, exec.Shard{Index: 1, Count: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Complete(wantID, "w-old", "L7", 1, art1); err != nil {
		t.Fatalf("completing a migrated lease: %v", err)
	}
	if st, err := c.Status(wantID); err != nil || !st.Complete || !st.Validated {
		t.Fatalf("migrated campaign did not finish: %+v (%v)", st, err)
	}
	// New leases do not collide with pre-migration IDs: seq carried over.
	id2, _, err := c.Submit(coord.Spec{Command: campaignCommand, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	g, state, err := c.Lease(id2, "w-new")
	if err != nil || state != coord.Granted {
		t.Fatalf("fresh lease after migration: %v %v", state, err)
	}
	if g.LeaseID == "L7" {
		t.Fatal("fresh lease reused a migrated lease ID")
	}
	// Migration is one-way and stable: reopening recovers the v2 tenancy.
	c2, err := coord.New(dir, coord.Options{})
	if err != nil {
		t.Fatalf("reopening a migrated directory: %v", err)
	}
	if infos := c2.Campaigns(); len(infos) != 2 {
		t.Fatalf("reopened tenancy = %+v, want 2 campaigns", infos)
	}
}

// TestJournalV1MigrationResumesAfterCrash: a crash after the artifact
// moves but before the v2 journal lands leaves the v1 journal naming
// files that already sit at their v2 paths; the next open must treat the
// completed move as success.
func TestJournalV1MigrationResumesAfterCrash(t *testing.T) {
	dir, art0 := writeV1Dir(t, flit.EngineVersion)
	// Simulate the torn state: the file already moved, the journal did not.
	wantID := coord.CampaignID(coord.Spec{Engine: flit.EngineVersion, Command: campaignCommand, Shards: 2})
	if err := os.MkdirAll(filepath.Join(dir, "artifacts", wantID), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(filepath.Join(dir, "artifacts", "shard-0.json"),
		filepath.Join(dir, "artifacts", wantID, "shard-0.json")); err != nil {
		t.Fatal(err)
	}
	c, err := coord.New(dir, coord.Options{})
	if err != nil {
		t.Fatalf("resuming a torn migration: %v", err)
	}
	st, err := c.Status(wantID)
	if err != nil || st.Done != 1 {
		t.Fatalf("resumed migration lost the done shard: %+v (%v)", st, err)
	}
	got, err := os.ReadFile(filepath.Join(c.ArtifactDir(wantID), "shard-0.json"))
	if err != nil || string(got) != string(art0) {
		t.Fatalf("resumed migration damaged the artifact: %v", err)
	}
}

// TestJournalRefusals: journals this build must not adopt — a newer
// format version (its state may not be schedulable faithfully) and any
// journal fenced to a foreign engine, in both v1 and v2 forms.
func TestJournalRefusals(t *testing.T) {
	t.Run("newer-version", func(t *testing.T) {
		dir := t.TempDir()
		raw := fmt.Sprintf(`{"version": %d, "engine": %q, "campaigns": []}`,
			coord.JournalVersion+1, flit.EngineVersion)
		if err := os.WriteFile(filepath.Join(dir, "coord.json"), []byte(raw), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := coord.New(dir, coord.Options{}); err == nil ||
			!strings.Contains(err.Error(), "journal format") {
			t.Fatalf("newer journal adopted: %v", err)
		}
	})
	t.Run("foreign-engine-v1", func(t *testing.T) {
		dir, _ := writeV1Dir(t, "flit-go/alien")
		if _, err := coord.New(dir, coord.Options{}); err == nil ||
			!strings.Contains(err.Error(), "not interchangeable") {
			t.Fatalf("foreign-engine v1 journal adopted: %v", err)
		}
	})
	t.Run("foreign-engine-v2", func(t *testing.T) {
		dir := t.TempDir()
		// Write a valid v2 journal under an alien engine, then reopen with
		// this build's fence.
		c, err := coord.New(dir, coord.Options{Engine: "flit-go/alien"})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.Submit(coord.Spec{Command: campaignCommand, Shards: 2}); err != nil {
			t.Fatal(err)
		}
		if _, err := coord.New(dir, coord.Options{}); err == nil ||
			!strings.Contains(err.Error(), "not interchangeable") {
			t.Fatalf("foreign-engine v2 journal adopted: %v", err)
		}
	})
	t.Run("garbage", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "coord.json"), []byte("not json"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := coord.New(dir, coord.Options{}); err == nil ||
			!strings.Contains(err.Error(), "unreadable journal") {
			t.Fatalf("garbage journal adopted: %v", err)
		}
	})
}

// TestClientReportsLastStatusOnDamagedBody pins the satellite-3 fix: a
// server that answers 200 with an undecodable body exhausts the retry
// budget, and the error must name the real last status (200), not the
// zero value the old code reported after discarding the attempt.
func TestClientReportsLastStatusOnDamagedBody(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, "{damaged")
	}))
	t.Cleanup(srv.Close)
	cl, err := coord.NewClient(srv.URL, flit.EngineVersion, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	_, err = cl.Status(t.Context(), "c1234")
	if err == nil {
		t.Fatal("damaged 200 responses produced no error")
	}
	if !strings.Contains(err.Error(), "last status 200") {
		t.Fatalf("exhausted error = %q, want it to report last status 200", err)
	}
	if strings.Contains(err.Error(), "status 0") {
		t.Fatalf("exhausted error still reports the discarded status: %q", err)
	}
	if !strings.Contains(err.Error(), "malformed response") {
		t.Fatalf("exhausted error = %q, want the decode failure preserved", err)
	}
}

// TestClientCtxCancelAborts: a cancelled context stops a client call
// mid-retry instead of riding out the operation deadline — the
// scheduling half of the satellite-2 ctx threading.
func TestClientCtxCancelAborts(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // never answer: only cancellation ends the attempt
	}))
	t.Cleanup(srv.Close)
	// Production-scale deadlines (5s per attempt, 30s per operation); only
	// ctx can end this in milliseconds.
	cl, err := coord.NewClient(srv.URL, flit.EngineVersion, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := cl.Campaigns(ctx)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled call reported success")
		}
		if !errors.Is(err, context.Canceled) && !strings.Contains(err.Error(), "context canceled") {
			t.Fatalf("cancelled call returned %v, want a context cancellation", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("cancelled call did not return promptly; it is riding out the transport deadline")
	}
}

// rewriteJournal decodes dir's coord.json into a generic map, applies
// mutate, and writes it back — the hand-editing the migration and
// corruption tests need to simulate journals this build did not write.
func rewriteJournal(t *testing.T, dir string, mutate func(j map[string]any)) {
	t.Helper()
	path := filepath.Join(dir, "coord.json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var j map[string]any
	if err := json.Unmarshal(raw, &j); err != nil {
		t.Fatal(err)
	}
	mutate(j)
	out, err := json.Marshal(j)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// journalShardField mutates one field of one shard record in a generic
// journal map.
func journalShardField(j map[string]any, campaign, shard int, field string, v any) {
	cs := j["campaigns"].([]any)
	sh := cs[campaign].(map[string]any)["shards"].([]any)
	sh[shard].(map[string]any)[field] = v
}

// TestJournalV2Migration: a PR 9 multi-tenant journal (version 2 — the
// v3 shape minus the containment fields) is adopted in place: the
// tenancy resumes with zero attempts and no quarantine, and the file on
// disk is atomically re-stamped to the current version so migration runs
// at most once.
func TestJournalV2Migration(t *testing.T) {
	dir := t.TempDir()
	c1, err := coord.New(dir, coord.Options{LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := c1.Submit(coord.Spec{Command: campaignCommand, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	g, state, err := c1.Lease(id, "w-old")
	if err != nil || state != coord.Granted {
		t.Fatalf("lease: state=%v err=%v", state, err)
	}
	// Rewind the snapshot to version 2: strip every v3 field, exactly as a
	// PR 9 build would have written it.
	rewriteJournal(t, dir, func(j map[string]any) {
		j["version"] = 2
		for _, ci := range j["campaigns"].([]any) {
			cm := ci.(map[string]any)
			delete(cm, "fail_reports")
			for _, si := range cm["shards"].([]any) {
				sm := si.(map[string]any)
				delete(sm, "attempts")
				delete(sm, "quarantined")
				delete(sm, "failures")
			}
		}
	})
	c2, err := coord.New(dir, coord.Options{LeaseTTL: time.Minute})
	if err != nil {
		t.Fatalf("migrating a v2 journal: %v", err)
	}
	st, err := c2.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Quarantined) != 0 || len(st.Failures) != 0 {
		t.Fatalf("v2 migration invented containment state: %+v", st)
	}
	// The migrated lease keeps working under its pre-migration ID. The
	// grant's attempt predates v3 accounting, so attempts start at zero.
	if err := c2.Heartbeat(id, "w-old", g.LeaseID, g.Shard); err != nil {
		t.Fatalf("heartbeat on a migrated lease: %v", err)
	}
	// The file was re-stamped in place.
	raw, err := os.ReadFile(filepath.Join(dir, "coord.json"))
	if err != nil {
		t.Fatal(err)
	}
	var probe struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		t.Fatal(err)
	}
	if probe.Version != coord.JournalVersion {
		t.Fatalf("migrated journal on disk is v%d, want re-stamp to v%d", probe.Version, coord.JournalVersion)
	}
	// Stable: a third open is an ordinary current-version recovery.
	if _, err := coord.New(dir, coord.Options{}); err != nil {
		t.Fatalf("reopening a migrated directory: %v", err)
	}
}

// TestJournalV3CorruptionRefusals: v3 containment state this build could
// not have written is refused rather than adopted — a negative attempt
// count, a shard both done and quarantined (trusting either half could
// resurrect a quarantined shard as leasable), a negative report counter.
func TestJournalV3CorruptionRefusals(t *testing.T) {
	writeDir := func(t *testing.T) (string, string) {
		dir := t.TempDir()
		c, err := coord.New(dir, coord.Options{})
		if err != nil {
			t.Fatal(err)
		}
		id, _, err := c.Submit(coord.Spec{Command: campaignCommand, Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		g, state, err := c.Lease(id, "w1")
		if err != nil || state != coord.Granted {
			t.Fatalf("lease: state=%v err=%v", state, err)
		}
		art, err := experiments.RunShard(campaignCommand, exec.Shard{Index: g.Shard, Count: 2}, 2)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := c.Complete(id, "w1", g.LeaseID, g.Shard, art); err != nil {
			t.Fatal(err)
		}
		return dir, id
	}
	t.Run("negative-attempts", func(t *testing.T) {
		dir, _ := writeDir(t)
		rewriteJournal(t, dir, func(j map[string]any) {
			journalShardField(j, 0, 1, "attempts", -3)
		})
		if _, err := coord.New(dir, coord.Options{}); err == nil ||
			!strings.Contains(err.Error(), "negative attempt") {
			t.Fatalf("negative attempts adopted: %v", err)
		}
	})
	t.Run("done-and-quarantined", func(t *testing.T) {
		dir, _ := writeDir(t)
		rewriteJournal(t, dir, func(j map[string]any) {
			journalShardField(j, 0, 0, "quarantined", true)
		})
		if _, err := coord.New(dir, coord.Options{}); err == nil ||
			!strings.Contains(err.Error(), "both complete and quarantined") {
			t.Fatalf("done+quarantined shard adopted: %v", err)
		}
	})
	t.Run("negative-fail-reports", func(t *testing.T) {
		dir, _ := writeDir(t)
		rewriteJournal(t, dir, func(j map[string]any) {
			j["campaigns"].([]any)[0].(map[string]any)["fail_reports"] = -1
		})
		if _, err := coord.New(dir, coord.Options{}); err == nil ||
			!strings.Contains(err.Error(), "negative failure count") {
			t.Fatalf("negative fail_reports adopted: %v", err)
		}
	})
}
