package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/coord"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/flit"
	"repro/internal/store"
)

// drainTimeout bounds how long a shutting-down server waits for in-flight
// requests before closing their connections.
const drainTimeout = 5 * time.Second

// serveGracefully serves h on ln until SIGINT/SIGTERM (or the optional
// done channel fires), then stops accepting, drains in-flight requests
// within drainTimeout, and returns nil — so a supervised `flit store
// serve` or `flit coord serve` exits 0 on an orderly stop instead of
// dying mid-response.
func serveGracefully(h http.Handler, ln net.Listener, done <-chan struct{}, stdout io.Writer) error {
	srv := &http.Server{Handler: h}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		fmt.Fprintln(stdout, "shutting down: draining in-flight requests")
	case <-done:
		fmt.Fprintln(stdout, "campaigns complete: draining in-flight requests")
	}
	stop()
	sctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		// The drain deadline passed with requests still open; close them.
		srv.Close()
	}
	return nil
}

// cmdCoord dispatches the coordinator subcommands.
func cmdCoord(args []string, stdout, stderr io.Writer) error {
	if len(args) < 1 {
		return errors.New(`coord requires a subcommand: "serve", "status", "submit", or "gc"`)
	}
	switch args[0] {
	case "serve":
		return cmdCoordServe(args[1:], stdout, stderr)
	case "status":
		return cmdCoordStatus(args[1:], stdout, stderr)
	case "submit":
		return cmdCoordSubmit(args[1:], stdout, stderr)
	case "gc":
		return cmdCoordGC(args[1:], stdout, stderr)
	default:
		return fmt.Errorf(`unknown coord subcommand %q (want "serve", "status", "submit", or "gc")`, args[0])
	}
}

// cmdCoordServe runs the campaign coordinator: the flitd service. One
// process owns one coordinator directory holding the journal, the
// completed shard artifacts (one subdirectory per campaign), and an
// object store; its HTTP mux serves both the coordination protocol
// (/v1/coord/) and the object-store protocol (/v1/objects/), so workers
// point a single -coord URL at it for scheduling *and* result
// write-through. The coordinator is multi-tenant: -command/-shards
// submits an initial campaign, `flit coord submit` adds more while it
// runs, and a directory with a journal resumes every campaign in it —
// crash recovery is just restarting with the same -dir. A v1
// (single-campaign) journal from an older build migrates in place.
func cmdCoordServe(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("coord serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "", "coordinator directory: journal, shard artifacts, object store (required)")
	addr := fs.String("addr", "127.0.0.1:0", "listen address (port 0 picks a free port)")
	commandStr := fs.String("command", "", `initial campaign command, e.g. "experiments table4" (more arrive via flit coord submit)`)
	shards := fs.Int("shards", 0, "shard count for the initial campaign")
	leaseTTL := fs.Duration("lease-ttl", 10*time.Second, "lease lifetime without a heartbeat")
	maxAttempts := fs.Int("max-shard-attempts", coord.DefaultMaxShardAttempts,
		"attempts a shard gets (lease grants + failures) before it is quarantined")
	exitWhenDone := fs.Bool("exit-when-done", false, "exit once every submitted campaign reaches a terminal state (complete or failed)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *dir == "" {
		return errors.New("coord serve requires -dir DIR")
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("coord serve takes no positional arguments (got %q)", fs.Args())
	}
	if (*commandStr == "") != (*shards == 0) {
		return errors.New("coord serve wants -command and -shards together (or neither)")
	}
	c, err := coord.New(*dir, coord.Options{LeaseTTL: *leaseTTL, MaxShardAttempts: *maxAttempts})
	if err != nil {
		return err
	}
	if *commandStr != "" {
		id, created, err := c.Submit(coord.Spec{Command: strings.Fields(*commandStr), Shards: *shards})
		if err != nil {
			return err
		}
		if created {
			fmt.Fprintf(stdout, "campaign %s: submitted %q as %d shards\n", id, *commandStr, *shards)
		} else {
			fmt.Fprintf(stdout, "campaign %s: already registered, resuming\n", id)
		}
	}
	for _, ci := range c.Campaigns() {
		fmt.Fprintf(stdout, "campaign %s: coordinating %q as %d shards (%d/%d done)\n",
			ci.ID, coord.CommandString(ci.Command), ci.Shards, ci.Done, ci.Shards)
	}
	// The shared object store lives inside the coordinator directory:
	// worker write-through lands here, so a re-leased shard's replacement
	// replays its predecessor's results as warm hits — across campaigns
	// too, because store keys are injective over the same coordinates
	// that name a campaign.
	d, err := store.Open(filepath.Join(*dir, "store"), c.Engine())
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.Handle("/", store.Handler(d))
	mux.Handle("/v1/coord/", coord.Handler(c))
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("coord serve: %w", err)
	}
	fmt.Fprintf(stdout, "coordinating %d campaign(s) (engine %s) on http://%s\n",
		len(c.Campaigns()), c.Engine(), ln.Addr())
	var done <-chan struct{}
	if *exitWhenDone {
		done = c.Done()
	}
	if err := serveGracefully(mux, ln, done, stdout); err != nil {
		return err
	}
	var invalid, failed []string
	for _, ci := range c.Campaigns() {
		fmt.Fprintf(stdout, "campaign %s: %d/%d shards complete, %d re-leases\n",
			ci.ID, ci.Done, ci.Shards, ci.Releases)
		if ci.Failed {
			fmt.Fprintf(stdout, "campaign %s: FAILED — %s\n", ci.ID, ci.Problem)
			failed = append(failed, fmt.Sprintf("%s: %s", ci.ID, ci.Problem))
			continue
		}
		if !ci.Complete {
			continue
		}
		if !ci.Validated {
			invalid = append(invalid, fmt.Sprintf("%s: %s", ci.ID, ci.Problem))
			continue
		}
		fmt.Fprintf(stdout, "campaign %s: artifact set validated; merge with: flit merge %s\n",
			ci.ID, filepath.Join(c.ArtifactDir(ci.ID), "shard-*.json"))
	}
	var errs []string
	if len(failed) > 0 {
		errs = append(errs, fmt.Sprintf("campaign(s) failed terminally: %s", strings.Join(failed, "; ")))
	}
	if len(invalid) > 0 {
		errs = append(errs, fmt.Sprintf("campaign artifacts fail merge validation: %s", strings.Join(invalid, "; ")))
	}
	if len(errs) > 0 {
		return errors.New(strings.Join(errs, "; "))
	}
	return nil
}

// coordClient builds the engine-fenced scheduling client the one-shot
// coord subcommands (status, submit, gc) share.
func coordClient(coordURL string, retries int, timeout time.Duration) (*coord.Client, error) {
	if coordURL == "" {
		return nil, errors.New("-coord URL is required")
	}
	opts, err := transportOptions(retries, timeout)
	if err != nil {
		return nil, err
	}
	return coord.NewClient(coordURL, flit.EngineVersion, opts)
}

// cmdCoordStatus renders the fleet view of a running coordinator: one
// line per campaign, or the per-lease detail of one campaign with
// -campaign. It is a pure read — the coordinator mutates no scheduling
// state answering it, so operators can poll as hard as they like.
func cmdCoordStatus(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("coord status", flag.ContinueOnError)
	fs.SetOutput(stderr)
	coordURL := fs.String("coord", "", "campaign coordinator URL (required)")
	campaign := fs.String("campaign", "", "campaign ID: show per-shard detail instead of the fleet view")
	retries, timeout := addTransportFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("coord status takes no positional arguments (got %q)", fs.Args())
	}
	cl, err := coordClient(*coordURL, *retries, *timeout)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if *campaign != "" {
		st, err := cl.Status(ctx, *campaign)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "campaign %s: %q as %d shards (engine %s)\n",
			st.ID, coord.CommandString(st.Command), st.Shards, st.Engine)
		fmt.Fprintf(stdout, "  done %d/%d, %d re-leases, attempt budget %d%s\n",
			st.Done, st.Shards, st.Releases, st.MaxAttempts,
			statusSuffix(st.Complete, st.Failed, st.Validated, st.Problem))
		for _, l := range st.Leases {
			expiry := fmt.Sprintf("expires in %dms", l.ExpiresMS)
			if l.ExpiresMS < 0 {
				// Expired but not reclaimed: the next heartbeat revives it, the
				// next lease poll sweeps it. Status only reports the gap.
				expiry = fmt.Sprintf("expired %dms ago, awaiting sweep or revival", -l.ExpiresMS)
			}
			fmt.Fprintf(stdout, "  shard %d leased to %s (%s, %s)\n", l.Shard, l.Worker, l.LeaseID, expiry)
		}
		for _, i := range st.Quarantined {
			attempts := 0
			if i < len(st.Attempts) {
				attempts = st.Attempts[i]
			}
			fmt.Fprintf(stdout, "  shard %d: QUARANTINED after %d attempts\n", i, attempts)
		}
		for _, f := range st.Failures {
			fmt.Fprintf(stdout, "  shard %d attempt %d failed (%s): %s\n", f.Shard, f.Attempt, f.Worker, f.Error)
			if line := excerptLine(f.Excerpt); line != "" {
				fmt.Fprintf(stdout, "    excerpt: %s\n", line)
			}
		}
		return nil
	}
	infos, err := cl.Campaigns(ctx)
	if err != nil {
		return err
	}
	if len(infos) == 0 {
		fmt.Fprintln(stdout, "no campaigns submitted")
		return nil
	}
	for _, ci := range infos {
		quarantined := ""
		if ci.Quarantined > 0 {
			quarantined = fmt.Sprintf(", %d quarantined", ci.Quarantined)
		}
		fmt.Fprintf(stdout, "campaign %s: %q as %d shards — done %d/%d, %d leased, %d re-leases%s%s\n",
			ci.ID, coord.CommandString(ci.Command), ci.Shards, ci.Done, ci.Shards,
			ci.Leases, ci.Releases, quarantined, statusSuffix(ci.Complete, ci.Failed, ci.Validated, ci.Problem))
	}
	return nil
}

// statusSuffix renders a campaign's terminal state for the status views.
func statusSuffix(complete, failed, validated bool, problem string) string {
	switch {
	case failed:
		return fmt.Sprintf(" — FAILED: %s", problem)
	case !complete:
		return ""
	case validated:
		return " — complete, validated"
	default:
		return fmt.Sprintf(" — complete, VALIDATION FAILED: %s", problem)
	}
}

// excerptLine compresses a (possibly multi-line) failure excerpt into one
// status line: its first non-empty line, clipped.
func excerptLine(excerpt string) string {
	for _, line := range strings.Split(excerpt, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if len(line) > 120 {
			line = line[:120] + "…"
		}
		return line
	}
	return ""
}

// cmdCoordSubmit registers a campaign with a running coordinator.
// Submission is idempotent: re-submitting the same command and shard
// count names the existing campaign, so supervisors can submit on every
// start without double-scheduling.
func cmdCoordSubmit(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("coord submit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	coordURL := fs.String("coord", "", "campaign coordinator URL (required)")
	commandStr := fs.String("command", "", `campaign command, e.g. "experiments table4" (required)`)
	shards := fs.Int("shards", 0, "shard count (required)")
	maxAttempts := fs.Int("max-shard-attempts", 0,
		"attempts a shard gets before quarantine (0 = the coordinator's default; not part of the campaign's identity)")
	retries, timeout := addTransportFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *commandStr == "" || *shards < 1 {
		return errors.New(`coord submit requires -command "..." and -shards N`)
	}
	if *maxAttempts < 0 {
		return errors.New("coord submit: -max-shard-attempts must be >= 0")
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("coord submit takes no positional arguments (got %q)", fs.Args())
	}
	cl, err := coordClient(*coordURL, *retries, *timeout)
	if err != nil {
		return err
	}
	id, created, err := cl.Submit(context.Background(), strings.Fields(*commandStr), *shards, *maxAttempts)
	if err != nil {
		return err
	}
	if created {
		fmt.Fprintf(stdout, "campaign %s: submitted %q as %d shards\n", id, *commandStr, *shards)
	} else {
		fmt.Fprintf(stdout, "campaign %s: already registered\n", id)
	}
	return nil
}

// cmdCoordGC asks a running coordinator to retire superseded completed
// campaign generations — the server-side form of `flit gc`, riding the
// coordinator's ownership of the journal so no artifact a live campaign
// references can be deleted out from under it.
func cmdCoordGC(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("coord gc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	coordURL := fs.String("coord", "", "campaign coordinator URL (required)")
	keep := fs.Int("keep", 1, "completed generations to keep per command")
	dryRun := fs.Bool("dry-run", false, "plan the retirement without changing anything")
	retries, timeout := addTransportFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("coord gc takes no positional arguments (got %q)", fs.Args())
	}
	cl, err := coordClient(*coordURL, *retries, *timeout)
	if err != nil {
		return err
	}
	res, err := cl.GC(context.Background(), *keep, *dryRun)
	if err != nil {
		return err
	}
	verb := "retired"
	if *dryRun {
		verb = "would retire"
	}
	for _, id := range res.Retired {
		fmt.Fprintf(stdout, "campaign %s: %s (superseded generation)\n", id, verb)
	}
	fmt.Fprintf(stdout, "%s %d campaign(s), kept %d\n", verb, len(res.Retired), res.Kept)
	return nil
}

// cmdWork runs the worker loop against a campaign coordinator: list the
// campaigns, lease a shard of the first incomplete one, run the recorded
// command with the ordinary experiments drivers, upload the artifact,
// repeat until every campaign is done — the fleet drains one campaign
// and picks up the next without restarting. The coordinator's own object
// store is attached as the engine cache's persistent tier (optionally
// fronted by a local -store DIR), and the shared
// -remote-retries/-remote-timeout knobs shape both the scheduling client
// and the store client. SIGINT/SIGTERM drains: scheduling calls are
// cancelled immediately, but the shard already running is finished and
// reported, then the loop exits 0.
func cmdWork(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("work", flag.ContinueOnError)
	fs.SetOutput(stderr)
	coordURL := fs.String("coord", "", "campaign coordinator URL (flit coord serve; required)")
	name := fs.String("name", "", "worker name reported to the coordinator (default host:pid)")
	j := fs.Int("j", 0, "parallel evaluations within a shard (0 = one per CPU)")
	storeDir := fs.String("store", "", "local run-store directory layered in front of the coordinator's store")
	stats := fs.Bool("stats", false, "print transport counters to stderr when the loop ends")
	verbose := fs.Bool("v", false, "log each lease/heartbeat-loss/completion event to stderr")
	retries, timeout := addTransportFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *coordURL == "" {
		return errors.New("work requires -coord URL")
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("work takes no positional arguments (got %q)", fs.Args())
	}
	opts, err := transportOptions(*retries, *timeout)
	if err != nil {
		return err
	}
	if *name == "" {
		host, _ := os.Hostname()
		*name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	cl, err := coord.NewClient(*coordURL, flit.EngineVersion, opts)
	if err != nil {
		return err
	}
	var tiers []store.Store
	if *storeDir != "" {
		d, err := store.Open(*storeDir, flit.EngineVersion)
		if err != nil {
			return err
		}
		tiers = append(tiers, d)
	}
	remote, err := store.NewRemote(*coordURL, flit.EngineVersion, opts)
	if err != nil {
		return err
	}
	tiers = append(tiers, remote)
	// FLIT_WORK_STALL makes this worker hold each leased shard idle (while
	// heartbeating) before running it — the deterministic straggler the
	// SIGKILL smoke needs: kill the stalled worker and its lease expires on
	// schedule, with no timing race against real work.
	var stallFor time.Duration
	if v := os.Getenv("FLIT_WORK_STALL"); v != "" {
		if stallFor, err = time.ParseDuration(v); err != nil {
			return fmt.Errorf("FLIT_WORK_STALL: %w", err)
		}
	}
	// FLIT_WORK_FAIL="<command-substring>:<shard-index>" makes this worker
	// fail that one shard of any campaign whose command contains the
	// substring — the deterministic poison the quarantine smoke needs:
	// every lease of that shard costs an attempt until the coordinator
	// quarantines it, while every other shard and campaign runs normally.
	failSubstr, failShard := "", -1
	if v := os.Getenv("FLIT_WORK_FAIL"); v != "" {
		sub, idxStr, ok := strings.Cut(v, ":")
		if !ok || sub == "" {
			return fmt.Errorf("FLIT_WORK_FAIL: want %q, got %q", "<command-substring>:<shard-index>", v)
		}
		idx, err := strconv.Atoi(idxStr)
		if err != nil || idx < 0 {
			return fmt.Errorf("FLIT_WORK_FAIL: bad shard index %q", idxStr)
		}
		failSubstr, failShard = sub, idx
	}
	runner := func(command []string, shard exec.Shard) ([]byte, error) {
		if stallFor > 0 {
			time.Sleep(stallFor)
		}
		if failSubstr != "" && shard.Index == failShard &&
			strings.Contains(coord.CommandString(command), failSubstr) {
			return nil, fmt.Errorf("FLIT_WORK_FAIL: injected deterministic failure for %q shard %d", failSubstr, shard.Index)
		}
		return experiments.RunShard(command, shard, *j, tiers...)
	}
	logW := io.Discard
	if *verbose {
		logW = stderr
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	wstats, werr := coord.Work(ctx, cl, runner, coord.WorkerOptions{Name: *name, Log: logW})
	if *stats {
		rm := remote.Metrics()
		fmt.Fprintf(stderr, "remote: hits=%d misses=%d puts=%d retries=%d errors=%d\n",
			rm.Hits, rm.Misses, rm.Puts, rm.Retries, rm.Errors)
		ro := cl.Options()
		fmt.Fprintf(stderr, "remote config: attempts=%d attempt-timeout=%s timeout=%s\n",
			ro.Attempts, ro.AttemptTimeout, ro.Deadline)
		fmt.Fprintf(stderr, "coord: completed=%d lost=%d failed=%d retries=%d\n",
			wstats.Completed, wstats.Lost, wstats.Failed, cl.Retries())
	}
	switch {
	case werr == nil:
		fmt.Fprintf(stdout, "worker %s: campaigns terminal (%d shards completed here, %d lost to re-lease, %d failed)\n",
			*name, wstats.Completed, wstats.Lost, wstats.Failed)
		return nil
	case errors.Is(werr, context.Canceled):
		// The drain path: the in-flight shard (if any) was finished and
		// reported before the loop returned.
		fmt.Fprintf(stdout, "worker %s: drained (%d shards completed here, %d lost to re-lease, %d failed)\n",
			*name, wstats.Completed, wstats.Lost, wstats.Failed)
		return nil
	default:
		return werr
	}
}
