package comp

import (
	"repro/internal/fp"
	"repro/internal/prog"
)

// effects is the compilation-level transformation potential: what the
// compiler is *allowed* to do to any function under this triple. Whether a
// particular function is actually transformed additionally depends on its
// body (prog.Features) and on the deterministic code-generation gates below.
type effects struct {
	fma     bool
	width   uint8 // reduction reassociation width the vectorizer may use
	unsafe  bool
	extprec bool
	ftz     bool
	approx  bool // approximate transcendental/sqrt code inlined at compile time
}

// compileEffects derives the transformation potential from the triple,
// per compiler personality.
func compileEffects(c Compilation) effects {
	switch c.Compiler {
	case GCC:
		return gccEffects(c)
	case Clang:
		return clangEffects(c)
	case ICPC:
		return icpcEffects(c)
	case XLC:
		return xlcEffects(c)
	default:
		return effects{width: 1}
	}
}

// gccEffects: gcc is value-safe by default at every -O level; only explicit
// flags change results. -mfma enables contraction at -O2 and above;
// unsafe-math flags enable reassociation (vectorized reductions need -O2+)
// and reciprocal math; -mfpmath=387 brings x87 80-bit temporaries.
func gccEffects(c Compilation) effects {
	e := effects{width: 1}
	o := optNum(c.OptLevel)
	fastMath := c.has("-ffast-math")
	unsafeMath := c.has("-funsafe-math-optimizations") || fastMath ||
		c.has("-fassociative-math") || c.has("-freciprocal-math")
	if c.has("-mfma") && o >= 2 {
		e.fma = true
	}
	if unsafeMath {
		e.unsafe = true
		if o >= 2 && !c.has("-freciprocal-math") {
			// Reassociation licenses vectorized reductions.
			if c.has("-mavx2") {
				e.width = 4
			} else {
				e.width = 2
			}
		}
	}
	if fastMath {
		e.ftz = true
	}
	if c.has("-mfpmath=387") {
		e.extprec = true
	}
	return e
}

// clangEffects: clang 6 keeps -ffp-contract=off for C++, so -mfma alone
// changes nothing — which is why clang is the most invariant compiler in the
// study. Only the unsafe-math family changes values.
func clangEffects(c Compilation) effects {
	e := effects{width: 1}
	o := optNum(c.OptLevel)
	fastMath := c.has("-ffast-math")
	unsafeMath := c.has("-funsafe-math-optimizations") || fastMath ||
		c.has("-fassociative-math") || c.has("-freciprocal-math")
	if c.has("-ffp-contract=on") && o >= 1 {
		e.fma = true // contraction within expressions when requested
	}
	if unsafeMath {
		e.unsafe = true
		if o >= 2 {
			if c.has("-mavx2") {
				e.width = 4
			} else {
				e.width = 2
			}
		}
		if c.has("-mfma") && o >= 2 {
			e.fma = true
		}
	}
	if fastMath {
		e.ftz = true
	}
	return e
}

// icpcEffects: the Intel compiler defaults to -fp-model fast=1, which
// licenses contraction, reassociation, and unsafe simplifications at any
// optimization level above -O0 — the root of its 49.8% variability rate.
// "precise"/"strict"/"source" restore value safety; fast=2 adds
// flush-to-zero and low-precision transcendentals; -fp-model double and
// extended widen intermediates.
func icpcEffects(c Compilation) effects {
	e := effects{width: 1}
	o := optNum(c.OptLevel)
	if o == 0 {
		return e
	}
	model := "fast1"
	switch {
	case c.hasSub("-fp-model precise"), c.hasSub("-fp-model strict"),
		c.hasSub("-fp-model source"):
		model = "precise"
	case c.hasSub("-fp-model fast=2"):
		model = "fast2"
	case c.hasSub("-fp-model double"), c.hasSub("-fp-model extended"):
		model = "widened"
	}
	switch model {
	case "precise":
		// Value-safe core arithmetic.
	case "widened":
		e.extprec = true
	case "fast2":
		e.unsafe = true
		e.fma = true
		e.ftz = true
		e.approx = true
		if o >= 2 {
			e.width = 8
		}
	default: // fast1
		e.unsafe = true
		e.fma = true
		if o >= 2 {
			e.width = 4
		}
	}
	if c.has("-xCORE-AVX512") && e.width > 1 {
		e.width = 8
	}
	if c.has("-no-fma") {
		e.fma = false
	}
	if c.has("-fma") && model != "precise" {
		e.fma = true
	}
	if c.has("-ftz") {
		e.ftz = true
	}
	if c.has("-no-ftz") {
		e.ftz = false
	}
	if c.has("-fimf-precision=low") || c.has("-fast-transcendentals") {
		e.approx = true
	}
	if c.has("-fimf-precision=high") || c.has("-no-fast-transcendentals") {
		e.approx = false
	}
	return e
}

// xlcEffects: the IBM compiler personality of the Laghos study. -O2 is
// value-safe (the compilation the Laghos developers trusted); -O3 turns on
// reassociation, contraction, and vectorization unless
// -qstrict=vectorprecision restores the -O2 vector rounding behavior.
func xlcEffects(c Compilation) effects {
	e := effects{width: 1}
	o := optNum(c.OptLevel)
	if o >= 3 {
		e.fma = true
		if !c.has("-qstrict=vectorprecision") {
			e.unsafe = true
			e.width = 4
		}
	}
	return e
}

// Code-generation gates: how often a licensed transformation is actually
// applied to an eligible function. Real optimizers leave most functions
// numerically untouched even under value-changing flags — whether a given
// loop contracts or reassociates depends mostly on the function's own shape
// and only slightly on the exact flag combination. The gate is therefore
// keyed primarily by the symbol (a fixed per-function "transformability"
// draw), shifted by a small per-compilation wobble, boosted at -O3, and
// near-certain for Hot kernels. The base rates are the personality knobs
// that reproduce the paper's per-compiler variability ordering
// (icpc 49.8% ≫ gcc 6.0% > clang 1.8%).
type genGates struct {
	basePct  int // per-function chance a licensed transform is applied
	fpicKill int // chance -fPIC disables a file's value-changing opts
}

func gatesFor(compiler string) genGates {
	switch compiler {
	case GCC:
		return genGates{basePct: 3, fpicKill: 35}
	case Clang:
		return genGates{basePct: 1, fpicKill: 20}
	case ICPC:
		return genGates{basePct: 5, fpicKill: 15}
	case XLC:
		return genGates{basePct: 80, fpicKill: 15}
	default:
		return genGates{basePct: 5, fpicKill: 25}
	}
}

// applyGate decides whether one transformation kind fires for one symbol
// under one compilation.
func applyGate(g genGates, hot bool, key, sym, tag string, opt int) bool {
	base := g.basePct
	if hot {
		// Hot, simple loop nests transform under any compiler that is
		// licensed to do so.
		base = 92
	}
	// Per-mille threshold: symbol-keyed draw, compilation wobble of ±30‰,
	// and a 50% boost at -O3 (higher levels transform more loops).
	thr := base*10 + int(hash64(key, sym, tag)%61) - 30
	if opt >= 3 {
		thr += thr / 2
	}
	return int(hash64(sym, tag)%1000) < thr
}

// Semantics maps one symbol of a program to the floating-point semantics the
// compilation's generated code evaluates under. Deterministic: equal inputs
// always produce equal semantics.
func Semantics(c Compilation, sym *prog.Symbol) fp.Semantics {
	e := compileEffects(c)
	g := gatesFor(c.Compiler)
	key := c.Compiler + "|" + c.OptLevel + "|" + c.Switches
	opt := optNum(c.OptLevel)
	hot := sym.Features.Hot
	s := fp.Strict

	// -fPIC defeats cross-procedural optimization for some files: when the
	// kill gate fires, every value-changing transform in this file is lost
	// (the paper's "variability removed by -fPIC" case in §2.3).
	fpicKilled := c.FPIC && gate(g.fpicKill, key, sym.File, "fpic-kill")

	if !fpicKilled {
		if e.fma && (sym.Features.MulAdd || sym.Features.Reduction) &&
			applyGate(g, hot, key, sym.Name, "fma", opt) {
			s.FuseFMA = true
		}
		if e.width > 1 && sym.Features.Reduction &&
			applyGate(g, hot, key, sym.Name, "vec", opt) {
			s.ReassocWidth = e.width
		}
		if e.unsafe && (sym.Features.ShortExpr || sym.Features.Division) &&
			applyGate(g, hot, key, sym.Name, "unsafe", opt) {
			s.UnsafeMath = true
		}
		if e.approx && sym.Features.SqrtLibm {
			s.ApproxMath = true
		}
	}
	// Widened intermediates and flush-to-zero are mode bits of the emitted
	// code, not per-loop decisions; they apply whenever the body computes.
	if e.extprec && (sym.Features.MulAdd || sym.Features.Reduction || sym.Features.ShortExpr) {
		s.ExtendedPrecision = true
	}
	if e.ftz {
		s.FlushSubnormals = true
	}
	return s
}

// LinkApproxMath reports whether linking with the given driver substitutes
// approximate vector-math libraries for libm calls, independent of how the
// object files were compiled. This reproduces the paper's finding that
// "variability was introduced by the Intel link step, regardless of
// optimization level or switches" (Figure 5 caption).
func LinkApproxMath(driver string) bool {
	return driver == ICPC
}

// ApplyLinkStep folds link-driver effects into a symbol's compile-time
// semantics.
func ApplyLinkStep(driver string, sym *prog.Symbol, s fp.Semantics) fp.Semantics {
	if LinkApproxMath(driver) && sym.Features.SqrtLibm {
		s.ApproxMath = true
	}
	return s
}
