package mfem

import "repro/internal/link"

// Element integrators (bilininteg.cpp) and global assembly
// (bilinearform.cpp, linearform.cpp).

// Coeff1D is a scalar coefficient of one variable evaluated through the
// machine (so its own symbol's semantics apply).
type Coeff1D func(m *link.Machine, x float64) float64

// Coeff2D is a scalar coefficient of two variables.
type Coeff2D func(m *link.Machine, x, y float64) float64

// One1D is the constant-1 coefficient.
func One1D(*link.Machine, float64) float64 { return 1 }

// One2D is the constant-1 coefficient in two variables.
func One2D(*link.Machine, float64, float64) float64 { return 1 }

// MassElement1D computes the 2×2 element mass matrix ∫ c φi φj over
// element e.
func MassElement1D(m *link.Machine, mesh *Mesh1D, e int, c Coeff1D) *Dense {
	env, done := m.Fn("MassIntegrator::Element1D")
	defer done()
	pts, wts := Gauss2(m)
	w := IsoWeight1D(m, mesh, e)
	ke := NewDense(2, 2)
	for q := range pts {
		n0, n1 := Shape1D(m, pts[q])
		x := IsoMap1D(m, mesh, e, pts[q])
		cv := c(m, x)
		scale := env.Mul(env.Mul(wts[q], w), cv)
		sh := [2]float64{n0, n1}
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				ke.Set(i, j, env.MulAdd(scale, env.Mul(sh[i], sh[j]), ke.At(i, j)))
			}
		}
	}
	return ke
}

// DiffusionElement1D computes the 2×2 element stiffness matrix
// ∫ c φi' φj' over element e.
func DiffusionElement1D(m *link.Machine, mesh *Mesh1D, e int, c Coeff1D) *Dense {
	env, done := m.Fn("DiffusionIntegrator::Element1D")
	defer done()
	pts, wts := Gauss2(m)
	w := IsoWeight1D(m, mesh, e)
	d0, d1 := DShape1D(m)
	// Physical derivatives scale by 1/w.
	g0, g1 := env.Div(d0, w), env.Div(d1, w)
	ke := NewDense(2, 2)
	for q := range pts {
		x := IsoMap1D(m, mesh, e, pts[q])
		cv := c(m, x)
		scale := env.Mul(env.Mul(wts[q], w), cv)
		g := [2]float64{g0, g1}
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				ke.Set(i, j, env.MulAdd(scale, env.Mul(g[i], g[j]), ke.At(i, j)))
			}
		}
	}
	return ke
}

// MassElement2D computes the 4×4 element mass matrix on a quad element.
func MassElement2D(m *link.Machine, mesh *Mesh2D, ex, ey int, c Coeff2D) *Dense {
	env, done := m.Fn("MassIntegrator::Element2D")
	defer done()
	pts, wts := Gauss2(m)
	jw := IsoWeight2D(m, mesh, ex, ey)
	ke := NewDense(4, 4)
	for qx := range pts {
		for qy := range pts {
			sh := Shape2D(m, pts[qx], pts[qy])
			px, py := IsoMap2D(m, mesh, ex, ey, pts[qx], pts[qy])
			cv := c(m, px, py)
			scale := env.Mul(env.Mul(env.Mul(wts[qx], wts[qy]), jw), cv)
			for i := 0; i < 4; i++ {
				for j := 0; j < 4; j++ {
					ke.Set(i, j, env.MulAdd(scale, env.Mul(sh[i], sh[j]), ke.At(i, j)))
				}
			}
		}
	}
	return ke
}

// DiffusionElement2D computes the 4×4 element stiffness matrix on a quad.
func DiffusionElement2D(m *link.Machine, mesh *Mesh2D, ex, ey int, c Coeff2D) *Dense {
	env, done := m.Fn("DiffusionIntegrator::Element2D")
	defer done()
	pts, wts := Gauss2(m)
	nodes := mesh.ElemNodes(ex, ey)
	hx := env.Sub(mesh.X[nodes[1]], mesh.X[nodes[0]])
	hy := env.Sub(mesh.Y[nodes[3]], mesh.Y[nodes[0]])
	jw := env.Mul(hx, hy)
	ke := NewDense(4, 4)
	for qx := range pts {
		for qy := range pts {
			ds := DShape2D(m, pts[qx], pts[qy])
			px, py := IsoMap2D(m, mesh, ex, ey, pts[qx], pts[qy])
			cv := c(m, px, py)
			scale := env.Mul(env.Mul(env.Mul(wts[qx], wts[qy]), jw), cv)
			for i := 0; i < 4; i++ {
				for j := 0; j < 4; j++ {
					// Physical gradients: d/dx scales by 1/hx, d/dy by 1/hy.
					gx := env.Mul(env.Div(ds[i][0], hx), env.Div(ds[j][0], hx))
					gy := env.Mul(env.Div(ds[i][1], hy), env.Div(ds[j][1], hy))
					ke.Set(i, j, env.MulAdd(scale, env.Add(gx, gy), ke.At(i, j)))
				}
			}
		}
	}
	return ke
}

// ConvectionElement1D computes the 2×2 element convection matrix
// ∫ v φi' φj for constant velocity v.
func ConvectionElement1D(m *link.Machine, mesh *Mesh1D, e int, v float64) *Dense {
	env, done := m.Fn("ConvectionIntegrator::Element1D")
	defer done()
	pts, wts := Gauss2(m)
	w := IsoWeight1D(m, mesh, e)
	d0, d1 := DShape1D(m)
	g := [2]float64{env.Div(d0, w), env.Div(d1, w)}
	ke := NewDense(2, 2)
	for q := range pts {
		n0, n1 := Shape1D(m, pts[q])
		sh := [2]float64{n0, n1}
		scale := env.Mul(env.Mul(wts[q], w), v)
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				ke.Set(i, j, env.MulAdd(scale, env.Mul(g[i], sh[j]), ke.At(i, j)))
			}
		}
	}
	return ke
}

// scatter adds element matrix ke into the global builder at the given dofs.
func scatter(m *link.Machine, b *csrBuilder, dofs []int, ke *Dense) {
	env, done := m.Fn("scatterElement")
	defer done()
	for i, gi := range dofs {
		for j, gj := range dofs {
			// The accumulate below goes through the env so that an
			// optimizer rewriting this file can reorder it.
			b.add(gi, gj, env.Add(ke.At(i, j), 0))
		}
	}
}

// AssembleMass1D assembles the global mass matrix of a 1-D mesh.
func AssembleMass1D(m *link.Machine, mesh *Mesh1D, c Coeff1D) *CSR {
	_, done := m.Fn("BilinearForm::AssembleMass1D")
	defer done()
	b := newCSRBuilder(mesh.N + 1)
	for e := 0; e < mesh.N; e++ {
		ke := MassElement1D(m, mesh, e, c)
		scatter(m, b, []int{e, e + 1}, ke)
	}
	return b.build()
}

// AssembleDiffusion1D assembles the global stiffness matrix of a 1-D mesh
// with homogeneous Dirichlet conditions applied to the boundary rows.
func AssembleDiffusion1D(m *link.Machine, mesh *Mesh1D, c Coeff1D) *CSR {
	_, done := m.Fn("BilinearForm::AssembleDiffusion1D")
	defer done()
	n := mesh.N + 1
	b := newCSRBuilder(n)
	for e := 0; e < mesh.N; e++ {
		ke := DiffusionElement1D(m, mesh, e, c)
		scatter(m, b, []int{e, e + 1}, ke)
	}
	applyDirichlet(b, []int{0, n - 1})
	return b.build()
}

// AssembleMass2D assembles the global 2-D mass matrix.
func AssembleMass2D(m *link.Machine, mesh *Mesh2D, c Coeff2D) *CSR {
	_, done := m.Fn("BilinearForm::AssembleMass2D")
	defer done()
	b := newCSRBuilder(mesh.NumNodes())
	for _, e := range mesh.elementSeq() {
		ex, ey := e%mesh.Nx, e/mesh.Nx
		ke := MassElement2D(m, mesh, ex, ey, c)
		nd := mesh.ElemNodes(ex, ey)
		scatter(m, b, nd[:], ke)
	}
	return b.build()
}

// AssembleDiffusion2D assembles the global 2-D stiffness matrix with
// Dirichlet conditions on the whole boundary.
func AssembleDiffusion2D(m *link.Machine, mesh *Mesh2D, c Coeff2D) *CSR {
	_, done := m.Fn("BilinearForm::AssembleDiffusion2D")
	defer done()
	b := newCSRBuilder(mesh.NumNodes())
	for _, e := range mesh.elementSeq() {
		ex, ey := e%mesh.Nx, e/mesh.Nx
		ke := DiffusionElement2D(m, mesh, ex, ey, c)
		nd := mesh.ElemNodes(ex, ey)
		scatter(m, b, nd[:], ke)
	}
	applyDirichlet(b, boundaryNodes(mesh))
	return b.build()
}

// applyDirichlet replaces the given rows with identity rows.
func applyDirichlet(b *csrBuilder, rows []int) {
	for _, r := range rows {
		b.rows[r] = map[int]float64{r: 1}
	}
}

// boundaryNodes lists the boundary node indices of a 2-D mesh.
func boundaryNodes(mesh *Mesh2D) []int {
	var out []int
	s := mesh.Nx + 1
	for j := 0; j <= mesh.Ny; j++ {
		for i := 0; i <= mesh.Nx; i++ {
			if i == 0 || j == 0 || i == mesh.Nx || j == mesh.Ny {
				out = append(out, j*s+i)
			}
		}
	}
	return out
}

// AssembleRHS1D assembles the load vector ∫ f φi with a 3-point rule,
// zeroing Dirichlet rows.
func AssembleRHS1D(m *link.Machine, mesh *Mesh1D, f Coeff1D) []float64 {
	env, done := m.Fn("LinearForm::Assemble1D")
	defer done()
	n := mesh.N + 1
	rhs := make([]float64, n)
	pts, wts := Gauss3(m)
	for e := 0; e < mesh.N; e++ {
		w := IsoWeight1D(m, mesh, e)
		for q := range pts {
			n0, n1 := Shape1D(m, pts[q])
			x := IsoMap1D(m, mesh, e, pts[q])
			fv := f(m, x)
			scale := env.Mul(env.Mul(wts[q], w), fv)
			rhs[e] = env.MulAdd(scale, n0, rhs[e])
			rhs[e+1] = env.MulAdd(scale, n1, rhs[e+1])
		}
	}
	rhs[0], rhs[n-1] = 0, 0
	return rhs
}

// AssembleRHS2D assembles the 2-D load vector, zeroing boundary rows.
func AssembleRHS2D(m *link.Machine, mesh *Mesh2D, f Coeff2D) []float64 {
	env, done := m.Fn("LinearForm::Assemble2D")
	defer done()
	rhs := make([]float64, mesh.NumNodes())
	pts, wts := Gauss2(m)
	for _, e := range mesh.elementSeq() {
		ex, ey := e%mesh.Nx, e/mesh.Nx
		nd := mesh.ElemNodes(ex, ey)
		jw := IsoWeight2D(m, mesh, ex, ey)
		for qx := range pts {
			for qy := range pts {
				sh := Shape2D(m, pts[qx], pts[qy])
				px, py := IsoMap2D(m, mesh, ex, ey, pts[qx], pts[qy])
				fv := f(m, px, py)
				scale := env.Mul(env.Mul(env.Mul(wts[qx], wts[qy]), jw), fv)
				for k := 0; k < 4; k++ {
					rhs[nd[k]] = env.MulAdd(scale, sh[k], rhs[nd[k]])
				}
			}
		}
	}
	for _, bn := range boundaryNodes(mesh) {
		rhs[bn] = 0
	}
	return rhs
}
