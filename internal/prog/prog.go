// Package prog describes the static structure of a simulated C++
// application: its source files, the symbols (functions) each file defines,
// and per-symbol metadata the compilation model needs — whether the symbol
// is globally exported (and therefore overridable at link time), what
// floating-point patterns its body contains (which decides which compiler
// transformations can change its results), its relative work (for the
// deterministic cost model), its static FP instruction count (for the
// injection study), and its callees (for call-graph closure and indirect
// blame attribution).
package prog

import (
	"fmt"
	"sort"
)

// Symbol is one function of the simulated application.
type Symbol struct {
	// Name is the (unique within the program) symbol name.
	Name string
	// File is the source file that defines this symbol.
	File string
	// Exported marks globally exported (strong, non-static) symbols.
	// Symbol-level bisection can only replace exported symbols; internal
	// symbols travel with whichever version of their callers is linked in.
	Exported bool
	// Work is the relative computational weight used by the cost model.
	Work float64
	// FPOps is the number of static floating-point instructions in the
	// body, used to enumerate injection sites.
	FPOps int
	// Features describes the FP patterns present in the body.
	Features Features
	// Callees lists symbols this function calls (same program).
	Callees []string
	// SLOC is the body's source-lines-of-code for Table 3 style statistics.
	SLOC int
}

// Features flags which floating-point patterns a function body contains.
// A compiler transformation can only change a function's results if the body
// contains a pattern the transformation rewrites.
type Features struct {
	MulAdd    bool // a*b+c chains (FMA contraction applies)
	Reduction bool // long sums / dot products (vector reassociation applies)
	Division  bool // divisions (reciprocal rewrite applies)
	SqrtLibm  bool // sqrt/exp/log/pow calls (library substitution applies)
	ShortExpr bool // short reassociable chains (unsafe-math applies)
	Branch    bool // result-dependent branching (amplifies variability)
	// Hot marks simple, hot loop nests that every optimizer reliably
	// transforms when licensed (the AddMult_a_AAt kernel of Finding 2).
	// Non-hot functions are transformed at the compiler's (low) base rate:
	// most code does not change shape under a new flag.
	Hot bool
}

// Any reports whether any feature is set.
func (f Features) Any() bool {
	return f.MulAdd || f.Reduction || f.Division || f.SqrtLibm || f.ShortExpr || f.Branch
}

// File is a translation unit of the simulated application.
type File struct {
	Name    string
	Symbols []*Symbol
}

// Program is the full static description of one simulated application.
type Program struct {
	Name  string
	files []*File
	syms  map[string]*Symbol
}

// New creates an empty program.
func New(name string) *Program {
	return &Program{Name: name, syms: make(map[string]*Symbol)}
}

// AddFile registers a translation unit and its symbols. It panics on a
// duplicate file or symbol name — program definitions are static tables
// written by hand, so a duplicate is a programming error.
func (p *Program) AddFile(name string, symbols ...*Symbol) *File {
	for _, f := range p.files {
		if f.Name == name {
			panic(fmt.Sprintf("prog: duplicate file %q in program %q", name, p.Name))
		}
	}
	f := &File{Name: name}
	for _, s := range symbols {
		if s.Name == "" {
			panic(fmt.Sprintf("prog: empty symbol name in file %q", name))
		}
		if _, dup := p.syms[s.Name]; dup {
			panic(fmt.Sprintf("prog: duplicate symbol %q", s.Name))
		}
		s.File = name
		if s.Work <= 0 {
			s.Work = 1
		}
		p.syms[s.Name] = s
		f.Symbols = append(f.Symbols, s)
	}
	p.files = append(p.files, f)
	return f
}

// Files returns the translation units in definition order.
func (p *Program) Files() []*File { return p.files }

// FileNames returns the file names in definition order.
func (p *Program) FileNames() []string {
	out := make([]string, len(p.files))
	for i, f := range p.files {
		out[i] = f.Name
	}
	return out
}

// File returns the named translation unit, or nil.
func (p *Program) File(name string) *File {
	for _, f := range p.files {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Symbol returns the named symbol, or nil.
func (p *Program) Symbol(name string) *Symbol { return p.syms[name] }

// MustSymbol returns the named symbol or panics. Application code uses it
// when entering one of its own registered functions, where a missing entry
// is a table bug.
func (p *Program) MustSymbol(name string) *Symbol {
	s := p.syms[name]
	if s == nil {
		panic(fmt.Sprintf("prog: unknown symbol %q in program %q", name, p.Name))
	}
	return s
}

// Symbols returns all symbols sorted by name.
func (p *Program) Symbols() []*Symbol {
	out := make([]*Symbol, 0, len(p.syms))
	for _, s := range p.syms {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ExportedSymbols returns the exported symbols of one file, sorted by name.
// These are the candidates for symbol-level bisection.
func (p *Program) ExportedSymbols(file string) []*Symbol {
	f := p.File(file)
	if f == nil {
		return nil
	}
	var out []*Symbol
	for _, s := range f.Symbols {
		if s.Exported {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Reachable returns the set of symbols reachable from the given roots
// through the static call graph (including the roots themselves). Unknown
// callee names are ignored: the simulated programs may call into the "C++
// standard library", which is outside the search space, just as in FLiT.
func (p *Program) Reachable(roots ...string) map[string]*Symbol {
	seen := make(map[string]*Symbol)
	var visit func(name string)
	visit = func(name string) {
		s := p.syms[name]
		if s == nil || seen[name] != nil {
			return
		}
		seen[name] = s
		for _, c := range s.Callees {
			visit(c)
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return seen
}

// ExportedAncestor returns the nearest exported symbol that (transitively)
// calls the named symbol, preferring the shortest call-chain. If the symbol
// itself is exported it is returned. Returns "" if none exists. This
// mirrors the paper's "indirect find": an injection in an inlined or
// internal function is attributed to the closest visible caller.
func (p *Program) ExportedAncestor(name string) string {
	target := p.syms[name]
	if target == nil {
		return ""
	}
	if target.Exported {
		return name
	}
	// Reverse edges, then BFS from the target through callers.
	callers := make(map[string][]string)
	for _, s := range p.syms {
		for _, c := range s.Callees {
			callers[c] = append(callers[c], s.Name)
		}
	}
	for _, list := range callers {
		sort.Strings(list)
	}
	visited := map[string]bool{name: true}
	frontier := []string{name}
	for len(frontier) > 0 {
		var next []string
		for _, cur := range frontier {
			for _, caller := range callers[cur] {
				if visited[caller] {
					continue
				}
				visited[caller] = true
				if p.syms[caller].Exported {
					return caller
				}
				next = append(next, caller)
			}
		}
		frontier = next
	}
	return ""
}

// Stats summarizes a program in the shape of the paper's Table 3.
type Stats struct {
	SourceFiles     int
	TotalFunctions  int
	AvgFuncsPerFile float64
	SLOC            int
	ExportedFuncs   int
	TotalFPOps      int
}

// Stats computes the program census.
func (p *Program) Stats() Stats {
	st := Stats{SourceFiles: len(p.files)}
	for _, f := range p.files {
		for _, s := range f.Symbols {
			st.TotalFunctions++
			st.SLOC += s.SLOC
			st.TotalFPOps += s.FPOps
			if s.Exported {
				st.ExportedFuncs++
			}
		}
	}
	if st.SourceFiles > 0 {
		st.AvgFuncsPerFile = float64(st.TotalFunctions) / float64(st.SourceFiles)
	}
	return st
}

// Validate checks cross-references: every callee that looks like a program
// symbol must resolve, every symbol must belong to a file, and FPOps/Work
// must be non-negative. It returns the first problem found.
func (p *Program) Validate() error {
	for _, f := range p.files {
		for _, s := range f.Symbols {
			if s.File != f.Name {
				return fmt.Errorf("prog %s: symbol %s has file %q, expected %q", p.Name, s.Name, s.File, f.Name)
			}
			if s.Work < 0 {
				return fmt.Errorf("prog %s: symbol %s has negative work", p.Name, s.Name)
			}
			if s.FPOps < 0 {
				return fmt.Errorf("prog %s: symbol %s has negative FPOps", p.Name, s.Name)
			}
			// An internal (static) function is invisible outside its
			// translation unit: callers must live in the same file.
			for _, cn := range s.Callees {
				c := p.syms[cn]
				if c != nil && !c.Exported && c.File != s.File {
					return fmt.Errorf("prog %s: %s (in %s) calls internal symbol %s of %s",
						p.Name, s.Name, s.File, cn, c.File)
				}
			}
		}
	}
	return nil
}
