package flit

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Artifact garbage collection for long-lived campaigns.
//
// An incremental campaign re-exports artifacts run after run, so a shard
// directory accumulates generations without bound. GC groups the *.json
// files of a directory by campaign slot — engine version, recorded
// command, and shard coordinates — and keeps only the newest N files of
// each slot: an older artifact for the same slot is strictly superseded (a
// deterministic engine would have produced it again), while files from
// other slots are never candidates, so a complete shard set can never be
// torn apart by pruning one of its members. Files named by a warm-start
// manifest are never touched, and files that do not parse *and validate*
// as this build's artifacts (delta reports, foreign-engine artifacts,
// hand-edited files) are never deleted — GC only prunes what it can prove
// superseded.

// GCPlan is the outcome of planning (and optionally applying) a GC pass
// over one directory. All lists hold full paths, sorted.
type GCPlan struct {
	// Kept are the newest keep files of each campaign slot.
	Kept []string
	// Pruned are superseded files (deleted by Apply).
	Pruned []string
	// Protected are superseded files spared because the caller's manifest
	// references them.
	Protected []string
	// Skipped are files that did not parse and validate as this build's
	// artifacts; GC never deletes what it cannot attribute to a campaign.
	Skipped []string
}

// gcFile is one parsed artifact file with its ordering metadata.
type gcFile struct {
	path    string
	created int64
	mod     time.Time
}

// PlanGC scans dir for artifact files and plans which are superseded.
// keep is the number of generations retained per campaign slot (>= 1);
// protect holds paths (as cleaned by NormalizePath) that must survive.
// Generations are ordered by the artifact's CreatedUnix stamp, then file
// modification time, then path — newest first.
func PlanGC(dir string, keep int, protect map[string]bool) (*GCPlan, error) {
	if keep < 1 {
		return nil, fmt.Errorf("flit: gc must keep at least one generation per campaign (keep=%d)", keep)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	plan := &GCPlan{}
	groups := make(map[string][]gcFile)
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".json") {
			continue
		}
		path := filepath.Join(dir, ent.Name())
		a, err := ReadArtifactFile(path)
		// Check, not just decode: other JSON (a DeltaReport, a foreign
		// engine's artifact, a hand-edited file) can decode leniently into
		// the Artifact shape, and attributing it to a campaign slot could
		// prune a file that was never a generation of anything. Only files
		// this build can vouch for are GC candidates.
		if err == nil {
			err = a.Check()
		}
		if err != nil {
			plan.Skipped = append(plan.Skipped, path)
			continue
		}
		info, err := ent.Info()
		if err != nil {
			plan.Skipped = append(plan.Skipped, path)
			continue
		}
		key := a.Engine + "\x00" + strings.Join(a.Command, "\x00") + "\x00" + a.Shard.String()
		groups[key] = append(groups[key], gcFile{path: path, created: a.CreatedUnix, mod: info.ModTime()})
	}
	for _, g := range groups {
		sort.Slice(g, func(i, j int) bool {
			if g[i].created != g[j].created {
				return g[i].created > g[j].created
			}
			if !g[i].mod.Equal(g[j].mod) {
				return g[i].mod.After(g[j].mod)
			}
			return g[i].path > g[j].path
		})
		for i, f := range g {
			switch {
			case i < keep:
				plan.Kept = append(plan.Kept, f.path)
			case protect[NormalizePath(f.path)]:
				plan.Protected = append(plan.Protected, f.path)
			default:
				plan.Pruned = append(plan.Pruned, f.path)
			}
		}
	}
	sort.Strings(plan.Kept)
	sort.Strings(plan.Pruned)
	sort.Strings(plan.Protected)
	sort.Strings(plan.Skipped)
	return plan, nil
}

// Apply removes every pruned file. Kept, protected, and skipped files are
// untouched by construction.
func (p *GCPlan) Apply() error {
	for _, path := range p.Pruned {
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("flit: gc pruning %s: %w", path, err)
		}
	}
	return nil
}

// NormalizePath is the canonical form both PlanGC and its callers use to
// compare paths (absolute when resolvable, cleaned otherwise), so a
// manifest entry protects a file however either side spelled the path.
func NormalizePath(path string) string {
	if abs, err := filepath.Abs(path); err == nil {
		return abs
	}
	return filepath.Clean(path)
}
