package core

import (
	"testing"

	"repro/internal/apps/mfem"
	"repro/internal/comp"
	"repro/internal/flit"
)

func workflow() *Workflow {
	return &Workflow{
		Suite: &flit.Suite{
			Prog:      mfem.Program(),
			Tests:     []flit.TestCase{mfem.NewCase(1), mfem.NewCase(5), mfem.NewCase(12), mfem.NewCase(13)},
			Baseline:  comp.Baseline(),
			Reference: comp.PerfReference(),
		},
		Matrix: comp.Matrix(),
	}
}

func TestAnalyzeAndRecommend(t *testing.T) {
	wf := workflow()
	a, err := wf.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	recs := a.Recommendations()
	if len(recs) != 4 {
		t.Fatalf("%d recommendations", len(recs))
	}
	byTest := map[string]Recommendation{}
	for _, r := range recs {
		byTest[r.Test] = r
		if !r.HasEqual {
			t.Fatalf("%s: no reproducible compilation at all", r.Test)
		}
		if r.FastestAnySpeedup < r.FastestEqualSpeedup {
			t.Fatalf("%s: fastest-any slower than fastest-equal", r.Test)
		}
	}
	// The invariant example's fastest is reproducible by definition.
	if !byTest["Example12"].FastestIsReproducible {
		t.Error("invariant example's fastest should be reproducible")
	}
	// Example 13 has variable compilations; the recommendation fields must
	// be consistent either way.
	r13 := byTest["Example13"]
	if r13.FastestIsReproducible && r13.FastestAny.Comp != r13.FastestEqual.Comp {
		t.Error("inconsistent reproducible-fastest recommendation")
	}
}

func TestWorkflowBisect(t *testing.T) {
	wf := workflow()
	a, err := wf.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	// Find a variable gcc compilation for Example13 and root-cause it.
	var variable comp.Compilation
	found := false
	for _, rr := range a.Results.ForTest("Example13") {
		if rr.Variable() && rr.Comp.Compiler == comp.GCC {
			variable, found = rr.Comp, true
			break
		}
	}
	if !found {
		t.Skip("no variable gcc compilation for Example13 in this model")
	}
	report, err := wf.Bisect(wf.TestByName("Example13"), variable, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Files) == 0 {
		t.Fatal("bisect found nothing")
	}
	if report.Files[0].File != "densemat.cpp" {
		t.Fatalf("blamed %s, want densemat.cpp", report.Files[0].File)
	}
}

func TestTestByName(t *testing.T) {
	wf := workflow()
	if wf.TestByName("Example05") == nil {
		t.Fatal("known test not found")
	}
	if wf.TestByName("nosuch") != nil {
		t.Fatal("unknown test found")
	}
}
