package main

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// startCoordServe launches `flit coord serve` on a free loopback port and
// returns its announced URL — read off stdout exactly as scripts do.
func startCoordServe(t *testing.T, dir string, extra ...string) string {
	t.Helper()
	out := &syncBuffer{}
	args := append([]string{"coord", "serve", "-dir", dir, "-addr", "127.0.0.1:0",
		"-command", "experiments table4", "-shards", "2"}, extra...)
	go run(args, out, out)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s := out.String(); strings.Contains(s, "on http://") {
			line := s[strings.Index(s, "on http://")+len("on "):]
			return strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
		}
	}
	t.Fatalf("coord serve never announced a URL: %q", out.String())
	return ""
}

// TestWorkCampaignEndToEnd drives the whole distributed protocol through
// the CLI entry points in-process: one coordinator, two concurrent
// workers, then `flit merge` over the completed artifact set — stdout
// byte-identical to the unsharded invocation.
func TestWorkCampaignEndToEnd(t *testing.T) {
	dir := t.TempDir()
	url := startCoordServe(t, dir)

	var want, stderr bytes.Buffer
	if code := run([]string{"experiments", "-j", "2", "table4"}, &want, &stderr); code != 0 {
		t.Fatalf("unsharded run: exit %d, stderr: %s", code, stderr.String())
	}

	var wg sync.WaitGroup
	codes := make([]int, 2)
	outs := make([]syncBuffer, 2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			codes[w] = run([]string{"work", "-coord", url, "-j", "2", "-stats",
				"-name", fmt.Sprintf("w%d", w)}, &outs[w], &outs[w])
		}(w)
	}
	wg.Wait()
	completed := 0
	for w := 0; w < 2; w++ {
		if codes[w] != 0 {
			t.Fatalf("worker %d: exit %d: %s", w, codes[w], outs[w].String())
		}
		if !strings.Contains(outs[w].String(), "campaign done") {
			t.Errorf("worker %d did not report campaign done: %s", w, outs[w].String())
		}
		if !strings.Contains(outs[w].String(), "remote config: attempts=4") {
			t.Errorf("worker %d -stats missing effective transport config: %s", w, outs[w].String())
		}
		var n int
		if _, err := fmt.Sscanf(afterToken(outs[w].String(), "campaign done ("), "%d", &n); err == nil {
			completed += n
		}
	}
	if completed != 2 {
		t.Errorf("workers completed %d shards between them, want 2", completed)
	}

	arts, err := filepath.Glob(filepath.Join(dir, "artifacts", "shard-*.json"))
	if err != nil || len(arts) != 2 {
		t.Fatalf("campaign artifacts = %v (err %v), want 2 files", arts, err)
	}
	var got bytes.Buffer
	stderr.Reset()
	if code := run(append([]string{"merge", "-j", "2"}, arts...), &got, &stderr); code != 0 {
		t.Fatalf("merge: exit %d, stderr: %s", code, stderr.String())
	}
	if got.String() != want.String() {
		t.Errorf("merged campaign output differs from unsharded run:\n--- merged ---\n%s\n--- unsharded ---\n%s",
			got.String(), want.String())
	}
}

// afterToken returns the text following the first occurrence of token.
func afterToken(s, token string) string {
	if i := strings.Index(s, token); i >= 0 {
		return s[i+len(token):]
	}
	return ""
}

// TestCoordServeExitWhenDone: with -exit-when-done the coordinator exits
// 0 on its own once the campaign completes and validates — the clean
// scripting surface ci.sh waits on.
func TestCoordServeExitWhenDone(t *testing.T) {
	dir := t.TempDir()
	out := &syncBuffer{}
	codec := make(chan int, 1)
	go func() {
		codec <- run([]string{"coord", "serve", "-dir", dir, "-addr", "127.0.0.1:0",
			"-command", "experiments table4", "-shards", "2", "-exit-when-done"}, out, out)
	}()
	deadline := time.Now().Add(5 * time.Second)
	url := ""
	for url == "" && time.Now().Before(deadline) {
		if s := out.String(); strings.Contains(s, "on http://") {
			line := s[strings.Index(s, "on http://")+len("on "):]
			url = strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
		}
	}
	if url == "" {
		t.Fatalf("no URL announced: %q", out.String())
	}
	var wout bytes.Buffer
	if code := run([]string{"work", "-coord", url, "-j", "2"}, &wout, &wout); code != 0 {
		t.Fatalf("worker: exit %d: %s\ncoord output: %s", code, wout.String(), out.String())
	}
	select {
	case code := <-codec:
		if code != 0 {
			t.Fatalf("coord serve exited %d: %s", code, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("coord serve did not exit after campaign completion: %s", out.String())
	}
	if !strings.Contains(out.String(), "2/2 shards complete") {
		t.Errorf("final status line missing: %s", out.String())
	}
	if !strings.Contains(out.String(), "validated") {
		t.Errorf("validation receipt missing: %s", out.String())
	}
}

// TestCoordServeResumesJournal: a second `coord serve` over the same
// directory resumes the journaled campaign (empty -command adopts it),
// and a conflicting -command is refused.
func TestCoordServeResumesJournal(t *testing.T) {
	dir := t.TempDir()
	url := startCoordServe(t, dir)
	var wout bytes.Buffer
	if code := run([]string{"work", "-coord", url, "-j", "2"}, &wout, &wout); code != 0 {
		t.Fatalf("worker: exit %d: %s", code, wout.String())
	}

	// Resume with no -command: adopts the journal, campaign already done.
	out := &syncBuffer{}
	codec := make(chan int, 1)
	go func() {
		codec <- run([]string{"coord", "serve", "-dir", dir, "-addr", "127.0.0.1:0",
			"-exit-when-done"}, out, out)
	}()
	select {
	case code := <-codec:
		if code != 0 {
			t.Fatalf("resumed coord serve exited %d: %s", code, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("resumed coord serve did not exit over a completed journal: %s", out.String())
	}
	if !strings.Contains(out.String(), `"experiments table4"`) {
		t.Errorf("resume did not announce the journaled command: %s", out.String())
	}

	// A different campaign over the same directory is a hard error.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"coord", "serve", "-dir", dir, "-addr", "127.0.0.1:0",
		"-command", "experiments table3", "-shards", "2"}, &stdout, &stderr); code != 1 {
		t.Fatalf("conflicting campaign: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "refusing to mix campaigns") {
		t.Errorf("diagnostic does not explain the refusal: %s", stderr.String())
	}
}

// TestWorkFlagValidation: usage errors are caught before any network IO.
func TestWorkFlagValidation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"work"}, &stdout, &stderr); code != 1 {
		t.Errorf("work without -coord: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "-coord") {
		t.Errorf("diagnostic does not name -coord: %s", stderr.String())
	}
	stderr.Reset()
	if code := run([]string{"work", "-coord", "http://127.0.0.1:1", "-remote-retries", "-3"},
		&stdout, &stderr); code != 1 {
		t.Errorf("negative -remote-retries: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "-remote-retries") {
		t.Errorf("diagnostic does not name -remote-retries: %s", stderr.String())
	}
	stderr.Reset()
	if code := run([]string{"work", "-coord", "ftp://elsewhere"}, &stdout, &stderr); code != 1 {
		t.Errorf("bad -coord scheme: exit %d, want 1", code)
	}
	stderr.Reset()
	if code := run([]string{"coord", "serve", "-dir", t.TempDir()}, &stdout, &stderr); code != 1 {
		t.Errorf("coord serve without -command over a fresh dir: exit %d, want 1", code)
	}
}

// TestTransportFlagValidation: the shared knobs are validated and, when
// given without a consumer, rejected rather than silently ignored.
func TestTransportFlagValidation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"experiments", "-remote-retries", "2", "table3"}, &stdout, &stderr); code != 1 {
		t.Errorf("-remote-retries without -remote: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "require -remote") {
		t.Errorf("diagnostic does not explain the dependency: %s", stderr.String())
	}
	stderr.Reset()
	if code := run([]string{"experiments", "-remote", "http://127.0.0.1:1", "-remote-timeout", "-5s", "table3"},
		&stdout, &stderr); code != 1 {
		t.Errorf("negative -remote-timeout: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "-remote-timeout") {
		t.Errorf("diagnostic does not name -remote-timeout: %s", stderr.String())
	}
}

// TestMergeListsMissingAndDuplicatedShards: the incomplete-partition
// diagnostics the coordinator (and a human) acts on — exact indices.
func TestMergeListsMissingAndDuplicatedShards(t *testing.T) {
	dir := t.TempDir()
	paths := make([]string, 4)
	for i := range paths {
		paths[i] = filepath.Join(dir, fmt.Sprintf("s%d.json", i))
		var stdout, stderr bytes.Buffer
		if code := run([]string{"experiments", "-shard", fmt.Sprintf("%d/4", i),
			"-shard-out", paths[i], "table4"}, &stdout, &stderr); code != 0 {
			t.Fatalf("shard %d: exit %d, stderr: %s", i, code, stderr.String())
		}
	}
	var stdout, stderr bytes.Buffer
	// Missing shards 1 and 3, shard 2 given twice.
	code := run([]string{"merge", paths[0], paths[2], paths[2]}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("broken partition merged: exit %d, want 1", code)
	}
	msg := stderr.String()
	for _, want := range []string{"missing shard indices [1 3]", "duplicated shard indices [2]"} {
		if !strings.Contains(msg, want) {
			t.Errorf("diagnostic missing %q:\n%s", want, msg)
		}
	}
}

