package link

import (
	"sync"
	"sync/atomic"

	"repro/internal/comp"
	"repro/internal/prog"
)

// FullBuildPlan describes linking every file of the program under a single
// compilation — what the FLiT matrix runner does for each cell of the
// compilation matrix. The compilation's own compiler drives the link.
func FullBuildPlan(p *prog.Program, c comp.Compilation) Plan {
	fileComp := make(map[string]comp.Compilation, len(p.Files()))
	for _, f := range p.Files() {
		fileComp[f.Name] = c
	}
	return Plan{Prog: p, Baseline: c, FileComp: fileComp, Driver: c.Compiler}
}

// FullBuild links every file of the program under a single compilation.
func FullBuild(p *prog.Program, c comp.Compilation) (*Executable, error) {
	return Link(FullBuildPlan(p, c))
}

// FileMixPlan describes the Test executable of File Bisect (Figure 3,
// left): the named files compiled under the variable compilation and
// everything else under the baseline. The baseline compiler drives the
// link, matching FLiT's use of a common GCC-compatible runtime.
func FileMixPlan(p *prog.Program, baseline, variable comp.Compilation, files []string) Plan {
	fileComp := make(map[string]comp.Compilation, len(files))
	for _, f := range files {
		fileComp[f] = variable
	}
	return Plan{Prog: p, Baseline: baseline, FileComp: fileComp}
}

// FileMixBuild links the named files compiled under the variable
// compilation and everything else under the baseline.
func FileMixBuild(p *prog.Program, baseline, variable comp.Compilation, files []string) (*Executable, error) {
	return Link(FileMixPlan(p, baseline, variable, files))
}

// SymbolMixPlan describes the Test executable of Symbol Bisect (Figure 3,
// right): two -fPIC copies of one file — the named exported symbols strong
// from the variable compilation, the rest strong from the baseline — plus
// baseline objects for all other files.
func SymbolMixPlan(p *prog.Program, baseline, variable comp.Compilation, symbols []string) Plan {
	symComp := make(map[string]comp.Compilation, len(symbols))
	for _, s := range symbols {
		symComp[s] = variable.WithFPIC()
	}
	return Plan{Prog: p, Baseline: baseline, SymbolComp: symComp}
}

// SymbolMixBuild links two -fPIC copies of one file — the named exported
// symbols strong from the variable compilation, the rest strong from the
// baseline — plus baseline objects for all other files.
func SymbolMixBuild(p *prog.Program, baseline, variable comp.Compilation, symbols []string) (*Executable, error) {
	return Link(SymbolMixPlan(p, baseline, variable, symbols))
}

// FPICProbePlan describes rebuilding one whole file under the variable
// compilation with -fPIC added and the rest under the baseline. Symbol
// Bisect runs this probe first: if the variability disappears, -fPIC
// defeated the optimization that caused it and the search cannot go below
// file granularity (paper §2.3).
func FPICProbePlan(p *prog.Program, baseline, variable comp.Compilation, file string) Plan {
	return FileMixPlan(p, baseline, variable.WithFPIC(), []string{file})
}

// FPICProbeBuild rebuilds one whole file under the variable compilation
// with -fPIC added and the rest under the baseline.
func FPICProbeBuild(p *prog.Program, baseline, variable comp.Compilation, file string) (*Executable, error) {
	return Link(FPICProbePlan(p, baseline, variable, file))
}

// Builder is a lazily-materialized build: it exposes the plan's cache key
// without linking, and links at most once, on first Build. A key-first
// cache (flit.Cache.RunAllPlanned/CostPlanned) consults its store by
// Builder.Key and calls Build only on a miss, so a warm lookup never
// validates a plan, never scans for ABI hazards, and never allocates an
// Executable. Safe for concurrent use: the matrix runner shares one
// builder across every test of a cell and the bisect searcher across the
// speculative probes of one subset.
type Builder struct {
	plan    Plan
	keyOnce sync.Once
	key     string

	once  sync.Once
	ex    *Executable
	err   error
	built atomic.Bool

	counted atomic.Bool
	skipped atomic.Bool
}

// NewBuilder wraps a plan for lazy materialization.
func NewBuilder(p Plan) *Builder { return &Builder{plan: p} }

// Plan returns the wrapped build plan.
func (b *Builder) Plan() Plan { return b.plan }

// Key returns the plan's cache key, computed once and without building.
func (b *Builder) Key() string {
	b.keyOnce.Do(func() { b.key = b.plan.Key() })
	return b.key
}

// Build links the plan on first call and returns the memoized outcome on
// every later one (including a memoized Link error — the toolchain is
// deterministic, so an unbuildable plan stays unbuildable).
func (b *Builder) Build() (*Executable, error) {
	b.once.Do(func() {
		b.ex, b.err = Link(b.plan)
		b.built.Store(true)
	})
	return b.ex, b.err
}

// Built reports whether the plan has been materialized (successfully or
// not). A warm cache hit leaves it false — the laziness the key-first
// build counters and their tests observe.
func (b *Builder) Built() bool { return b.built.Load() }

// MarkBuildCounted claims the one-time accounting token for this builder's
// materialization: the first caller gets true, everyone after false. The
// key-first cache uses it so a build shared by many lookups (every test of
// a matrix cell) is counted once in its metrics.
func (b *Builder) MarkBuildCounted() bool { return b.counted.CompareAndSwap(false, true) }

// MarkSkipCounted claims the one-time accounting token for a skipped
// build: true for the first caller that observed a cache hit while the
// plan was still unmaterialized, false after that or once the plan has
// been built. A builder that hits for some lookups and materializes for a
// later one legitimately counts on both sides — partially covered cells do
// both kinds of work.
func (b *Builder) MarkSkipCounted() bool {
	if b.built.Load() {
		return false
	}
	return b.skipped.CompareAndSwap(false, true)
}
