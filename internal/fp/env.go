package fp

import "fmt"

// InjectOp identifies the extra operation OP' applied by a variability
// injection (paper §3.5: x OP y becomes (x OP' eps) OP y).
type InjectOp byte

// The four basic injected operations.
const (
	InjAdd InjectOp = '+'
	InjSub InjectOp = '-'
	InjMul InjectOp = '*'
	InjDiv InjectOp = '/'
)

// AllInjectOps lists the four OP' choices used by the LULESH study.
var AllInjectOps = []InjectOp{InjAdd, InjSub, InjMul, InjDiv}

func (op InjectOp) String() string { return string(byte(op)) }

// Apply computes x OP' eps.
func (op InjectOp) Apply(x, eps float64) float64 {
	switch op {
	case InjAdd:
		return x + eps
	case InjSub:
		return x - eps
	case InjMul:
		return x * (1 + eps)
	case InjDiv:
		return x / (1 + eps)
	default:
		return x
	}
}

// Injection is a floating-point perturbation planted at one static
// instruction of one function, mirroring the paper's custom LLVM pass. The
// function body is modeled as a loop over its static FP instructions: the
// k-th dynamic operation executes static instruction k mod StaticOps, so an
// injection at OpIndex fires on every loop iteration, exactly like a real
// static-instruction injection.
type Injection struct {
	// OpIndex is the static instruction index within the function,
	// in [0, StaticOps).
	OpIndex int
	// Op is the extra operation OP'.
	Op InjectOp
	// Eps is the perturbation magnitude (drawn uniformly from (0,1) by the
	// enumeration pass, per the paper).
	Eps float64
}

func (inj Injection) String() string {
	return fmt.Sprintf("op%d %s %.3g", inj.OpIndex, inj.Op, inj.Eps)
}

// Env executes floating-point arithmetic for one function under the
// semantics its compilation assigned. An Env is created fresh for every
// executable run (its dynamic operation counter starts at zero) and must not
// be shared across goroutines.
type Env struct {
	sem Semantics

	// Static-instruction model for injection. staticOps == 0 disables
	// counting entirely (the common, un-injected fast path).
	staticOps int
	inj       *Injection
	n         int // dynamic op counter
}

// NewEnv returns an Env that evaluates under sem with no injection.
func NewEnv(sem Semantics) *Env {
	return &Env{sem: sem.Normalize()}
}

// NewInjectedEnv returns an Env under sem that perturbs static instruction
// inj.OpIndex of a function with staticOps static FP instructions.
func NewInjectedEnv(sem Semantics, staticOps int, inj Injection) *Env {
	if staticOps <= 0 {
		staticOps = 1
	}
	return &Env{sem: sem.Normalize(), staticOps: staticOps, inj: &inj}
}

// Sem returns the semantics this Env evaluates under.
func (e *Env) Sem() Semantics { return e.sem }

// Injected reports whether this Env carries an injection plan.
func (e *Env) Injected() bool { return e.inj != nil }

// OpsExecuted returns the number of dynamic FP operations executed so far.
// It is only tracked when an injection is active and returns 0 otherwise.
func (e *Env) OpsExecuted() int { return e.n }

// step advances the dynamic op counter and perturbs x if the current static
// instruction is the injection site. It is called once per FP operation with
// the operand the paper's pass perturbs (the left operand x of x OP y).
func (e *Env) step(x float64) float64 {
	if e.inj == nil {
		return x
	}
	idx := e.n % e.staticOps
	e.n++
	if idx == e.inj.OpIndex {
		return e.inj.Op.Apply(x, e.inj.Eps)
	}
	return x
}
