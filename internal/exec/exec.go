// Package exec is the shared parallel execution substrate of the
// reproduction: a worker pool that fans out independent (compilation, test)
// evaluations — the compilation × test matrix and each bisect step are
// independent program executions, which is what made the paper's search
// tractable on a cluster — and a concurrency-safe memoizing cache so the
// run of a repeated (build plan, test) pair executes once (mirroring
// FLiT's memoized bisect evaluations; the simulated link step itself is
// cheap map construction and is redone per evaluation).
//
// Everything scheduled through a Pool must be deterministic in its own
// right; the pool guarantees only that results are collected in submission
// order, so a parallel run is bit-identical to a sequential one regardless
// of completion order.
package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool bounds how many evaluations run concurrently. The zero value and the
// nil pool are both valid and sequential, so callers can plumb an optional
// *Pool through without nil checks.
//
// A Pool carries no goroutines of its own: each ForEach/Map call spawns up
// to Workers of them for its own job set, so the bound is per fan-out call,
// not a process-wide semaphore. Nested use cannot deadlock, but it
// multiplies concurrency (an outer Map of n items whose work functions each
// run an inner Map admits up to Workers² goroutines). Every driver in this
// repository therefore parallelizes at exactly one level — the outermost
// set of independent evaluations — and runs nested searches sequentially,
// which keeps the configured worker count the true concurrency bound. The
// one sanctioned second level is speculation: a pool's Submitter admits at
// most Workers-1 background evaluations for the whole pool, so committed
// fan-out plus speculation stays below twice the configured bound.
type Pool struct {
	workers int
}

// New returns a pool running up to n evaluations at once. n <= 0 means one
// worker per available CPU (GOMAXPROCS).
func New(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: n}
}

// Sequential returns a single-worker pool: the paper's original one-at-a-
// time execution order.
func Sequential() *Pool { return &Pool{workers: 1} }

// Workers reports the concurrency bound. A nil or zero pool is sequential.
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// ForEach runs fn(i) for every i in [0, n), at most Workers at a time.
//
// Error semantics are deterministic: the error of the lowest failing index
// is returned, which is exactly the error a sequential loop would have
// stopped on. With more than one worker, later indices may still execute
// after an earlier one fails (their side effects are limited to cache
// fills); the returned error is unaffected.
func (p *Pool) ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := p.Workers()
	if w == 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	if w > n {
		w = n
	}
	var next atomic.Int64
	next.Store(-1)
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map evaluates fn over [0, n) through the pool and returns the results in
// index order — completion order never leaks into the output. On error the
// lowest failing index wins, as in ForEach.
func Map[T any](p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := p.ForEach(n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
