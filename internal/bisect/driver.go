package bisect

import (
	"errors"
	"fmt"

	"repro/internal/comp"
	"repro/internal/exec"
	"repro/internal/flit"
	"repro/internal/link"
	"repro/internal/prog"
)

// SymbolStatus describes how far below file granularity a search got for
// one found file.
type SymbolStatus int

const (
	// SymbolsFound: Symbol Bisect succeeded and isolated functions.
	SymbolsFound SymbolStatus = iota
	// SymbolsCrashed: the strong/weak mixed executable segfaulted
	// (the Table 2 failure mode).
	SymbolsCrashed
	// FPICRemoved: recompiling the file with -fPIC removed the
	// variability, so the search cannot go deeper than the file (§2.3).
	FPICRemoved
	// NoExportedSymbols: the file exports nothing overridable.
	NoExportedSymbols
	// SymbolsSkipped: the search exited early (BisectBiggest) before
	// descending into this file.
	SymbolsSkipped
	// SymbolsAssumption: a bisect assumption failed during the symbol
	// search; results may be incomplete.
	SymbolsAssumption
)

func (s SymbolStatus) String() string {
	switch s {
	case SymbolsFound:
		return "found"
	case SymbolsCrashed:
		return "crashed"
	case FPICRemoved:
		return "fpic-removed"
	case NoExportedSymbols:
		return "no-exported-symbols"
	case SymbolsSkipped:
		return "skipped"
	case SymbolsAssumption:
		return "assumption-violated"
	default:
		return "unknown"
	}
}

// FileFinding is one variability-contributing source file together with the
// outcome of the symbol-level search inside it.
type FileFinding struct {
	File    string
	Value   float64
	Status  SymbolStatus
	Symbols []Finding
}

// Report is the outcome of one full hierarchical bisect search.
type Report struct {
	Files []FileFinding
	// Execs is the total number of program executions, the paper's cost
	// measure (file search + fPIC probes + symbol searches). It is the
	// committed sequential trace's count and is identical at every
	// parallelism — speculation never leaks into it.
	Execs int
	// SpecExecs is the extra speculative executions performed beyond
	// Execs when the search ran with a pooled, speculating engine. They
	// bought wall-clock, not coverage: the value is timing-dependent,
	// excluded from every paper statistic, and surfaced only through
	// diagnostics (the CLI's -stats).
	SpecExecs int
	// NoVariability is set when Test over all files is already 0: the
	// deviation seen in the matrix is not attributable to compiled code
	// (e.g. it was introduced by the link step, Figure 5 caption).
	NoVariability bool
}

// AllSymbols flattens every symbol finding, ordered by decreasing value.
func (r *Report) AllSymbols() []Finding {
	var out []Finding
	for _, f := range r.Files {
		out = append(out, f.Symbols...)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Value < out[j].Value; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Search configures one hierarchical FLiT Bisect run: which program, which
// FLiT test observes the variability, the trusted and the suspect
// compilations, and how many top contributors to find (K <= 0 runs the full
// BisectAll with dynamic verification; K > 0 runs BisectBiggest).
type Search struct {
	Prog     *prog.Program
	Test     flit.TestCase
	Baseline comp.Compilation
	Variable comp.Compilation
	K        int
	// Pool fans out the independent per-file symbol searches of a full
	// (K <= 0) run, and its Submitter drives speculative evaluation inside
	// every phase — the sequential File Bisect prefix, where the pool
	// would otherwise sit idle, included; nil searches sequentially. The
	// report is bit-identical either way: each file's search is
	// self-contained, findings are collected in file order, and the
	// committed probe sequence (hence Execs) never depends on speculation.
	// BisectBiggest (K > 0) runs its cross-file phase sequentially — the
	// early exit depends on the symbols found so far — but each file's
	// search still speculates internally.
	Pool *exec.Pool
	// Cache memoizes test runs by build plan, so evaluations repeated
	// across bisect steps and across searches (the baseline run above all)
	// execute once. Execution counts are unaffected: the paper's run
	// accounting is per search, tracked by each Searcher's own memo.
	Cache *flit.Cache
	// Shard restricts the per-file symbol searches of a full (K <= 0) run
	// to this shard's slice of the found-file index space; skipped files
	// are reported with SymbolsSkipped. The adaptive File Bisect phase runs
	// on every shard (its evaluations are the shared prefix every symbol
	// search depends on), so a sharded report exists only to fill the Cache
	// for artifact export — `flit merge` replays the full search against
	// the merged cache. The zero value searches every file. Drivers that
	// already shard at a coarser level (whole searches) leave this zero.
	Shard exec.Shard
}

// runPlanned executes the search's test against a lazily-materialized
// build plan through the build/run cache: memoized probes — within this
// search, across searches, or seeded from a warm-start artifact — replay
// without linking the plan at all.
func (s *Search) runPlanned(b *link.Builder) (flit.Result, error) {
	return s.Cache.RunAllPlanned(s.Test, b)
}

// Run performs File Bisect followed by Symbol Bisect inside each found file
// (paper §2.3). It returns the report together with the first fatal error:
// a crash during File Bisect aborts the search (the executable under test
// died), while crashes during a file's Symbol Bisect are recorded in that
// file's status and the search continues with the next file.
func (s *Search) Run() (*Report, error) {
	baseRes, err := s.runPlanned(link.NewBuilder(link.FullBuildPlan(s.Prog, s.Baseline)))
	if err != nil {
		return nil, fmt.Errorf("bisect: baseline execution failed: %w", err)
	}

	// One speculative admission gate for the whole search: the File Bisect
	// prefix and every per-file symbol search share it, so the committed
	// fan-out (bounded by the pool) plus speculation (bounded by the
	// submitter, Workers-1) never exceeds twice the configured -j.
	sub := s.Pool.Submitter()
	report := &Report{}
	fileSearch := NewSpeculativeSearcher(func(files []string) (float64, error) {
		got, err := s.runPlanned(link.NewBuilder(link.FileMixPlan(s.Prog, s.Baseline, s.Variable, files)))
		if err != nil {
			return 0, err
		}
		return s.Test.Compare(baseRes, got), nil
	}, sub)

	var fileFindings []Finding
	if s.K > 0 {
		fileFindings, err = fileSearch.Biggest(s.Prog.FileNames(), s.K)
	} else {
		fileFindings, err = fileSearch.All(s.Prog.FileNames())
	}
	report.Execs += fileSearch.Execs()
	report.SpecExecs += fileSearch.SpecExecs()
	if err != nil {
		return report, err
	}
	if len(fileFindings) == 0 {
		report.NoVariability = true
		return report, nil
	}

	if s.K > 0 {
		// BisectBiggest couples the files: a file whose whole-file
		// magnitude is below the k-th symbol found so far is skipped, so
		// the phase must observe earlier files' findings and stays
		// sequential.
		kthValue := func() float64 {
			syms := report.AllSymbols()
			if len(syms) < s.K {
				return -1
			}
			return syms[s.K-1].Value
		}
		for _, ff := range fileFindings {
			finding := FileFinding{File: ff.Item, Value: ff.Value}
			// Early exit across levels: a file whose whole-file magnitude
			// is below the k-th found symbol cannot contain a larger
			// symbol.
			if ff.Value <= kthValue() {
				finding.Status = SymbolsSkipped
				report.Files = append(report.Files, finding)
				continue
			}
			execs, spec := s.searchSymbols(&finding, baseRes, sub)
			report.Execs += execs
			report.SpecExecs += spec
			report.Files = append(report.Files, finding)
		}
		return report, nil
	}

	// Full search: every found file gets an independent Symbol Bisect, so
	// the per-file searches fan out through the pool. Each search is
	// self-contained (own Searcher, own memo, own execution count); the
	// findings are collected in file order and the counts summed, so the
	// report is identical to the sequential one.
	type symOut struct {
		finding FileFinding
		execs   int
		spec    int
	}
	outs, _ := exec.Map(s.Pool, len(fileFindings), func(i int) (symOut, error) {
		ff := fileFindings[i]
		finding := FileFinding{File: ff.Item, Value: ff.Value}
		if !s.Shard.Owns(i) {
			finding.Status = SymbolsSkipped // another shard searches this file
			return symOut{finding: finding}, nil
		}
		execs, spec := s.searchSymbols(&finding, baseRes, sub)
		return symOut{finding: finding, execs: execs, spec: spec}, nil
	})
	for _, o := range outs {
		report.Files = append(report.Files, o.finding)
		report.Execs += o.execs
		report.SpecExecs += o.spec
	}
	return report, nil
}

// searchSymbols performs the Symbol Bisect phase for one found file and
// returns how many program executions it used — the paper count and the
// extra speculative count separately.
func (s *Search) searchSymbols(finding *FileFinding, baseRes flit.Result, sub *exec.Submitter) (int, int) {
	// The -fPIC probe: rebuild the whole file with -fPIC under the
	// variable compilation; if the variability disappears the optimization
	// needed translation-unit-wide freedom and the search must stop here.
	execs := 1 // the probe run
	probeRes, err := s.runPlanned(link.NewBuilder(link.FPICProbePlan(s.Prog, s.Baseline, s.Variable, finding.File)))
	if err != nil {
		finding.Status = SymbolsCrashed
		return execs, 0
	}
	if s.Test.Compare(baseRes, probeRes) == 0 {
		finding.Status = FPICRemoved
		return execs, 0
	}

	symbols := s.Prog.ExportedSymbols(finding.File)
	if len(symbols) == 0 {
		finding.Status = NoExportedSymbols
		return execs, 0
	}
	names := make([]string, len(symbols))
	for i, sym := range symbols {
		names[i] = sym.Name
	}

	symSearch := NewSpeculativeSearcher(func(syms []string) (float64, error) {
		got, err := s.runPlanned(link.NewBuilder(link.SymbolMixPlan(s.Prog, s.Baseline, s.Variable, syms)))
		if err != nil {
			return 0, err
		}
		return s.Test.Compare(baseRes, got), nil
	}, sub)
	var found []Finding
	if s.K > 0 {
		found, err = symSearch.Biggest(names, s.K)
	} else {
		found, err = symSearch.All(names)
	}
	execs += symSearch.Execs()
	finding.Symbols = found
	switch {
	case err == nil:
		finding.Status = SymbolsFound
	case errors.Is(err, link.ErrSegfault):
		finding.Status = SymbolsCrashed
	default:
		finding.Status = SymbolsAssumption
	}
	return execs, symSearch.SpecExecs()
}
