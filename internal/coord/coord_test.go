package coord_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/flit"
	"repro/internal/store"
	"repro/internal/store/storetest"
)

// campaignCommand is the canonical campaign every test schedules: the
// Laghos bisect fan-out — cheap but non-trivial, and the same standard
// the CLI's shard/merge equivalence tests replay. secondCommand is the
// other tenant in the multi-campaign tests.
var (
	campaignCommand = []string{"experiments", "table4"}
	secondCommand   = []string{"experiments", "table3"}
)

// fastOpts is the test transport: production shape, millisecond scale.
func fastOpts() *store.RemoteOptions {
	return &store.RemoteOptions{
		Attempts:       4,
		BaseDelay:      time.Millisecond,
		MaxDelay:       4 * time.Millisecond,
		AttemptTimeout: 250 * time.Millisecond,
		Deadline:       10 * time.Second,
	}
}

// newCoord opens a coordinator over a fresh directory and submits the
// given campaigns, returning the coordinator and the campaign IDs.
func newCoord(t *testing.T, opts coord.Options, specs ...coord.Spec) (*coord.Coordinator, []string) {
	t.Helper()
	c, err := coord.New(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 0, len(specs))
	for _, spec := range specs {
		id, created, err := c.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !created {
			t.Fatalf("campaign %s submitted twice", id)
		}
		ids = append(ids, id)
	}
	return c, ids
}

// serveCampaign starts a coordinator over dir with its object store and
// returns the Flaky fault injector wrapping the whole mux.
func serveCampaign(t *testing.T, c *coord.Coordinator) (*httptest.Server, *storetest.Flaky) {
	t.Helper()
	d, err := store.Open(filepath.Join(c.Dir(), "store"), c.Engine())
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/", store.Handler(d))
	mux.Handle("/v1/coord/", coord.Handler(c))
	flaky := storetest.NewFlaky(mux)
	srv := httptest.NewServer(flaky)
	t.Cleanup(srv.Close)
	return srv, flaky
}

// runner builds the production worker unit: run the shard with the
// experiments drivers, write results through the server's object store.
func runner(t *testing.T, url string, j int) coord.Runner {
	t.Helper()
	remote, err := store.NewRemote(url, flit.EngineVersion, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	return func(command []string, shard exec.Shard) ([]byte, error) {
		return experiments.RunShard(command, shard, j, remote)
	}
}

// unshardedOutput renders command on a fresh engine — the byte-identity
// reference every converged campaign must reproduce.
func unshardedOutput(t *testing.T, command []string, j int) string {
	t.Helper()
	eng := experiments.NewEngineCap(j, 0)
	var buf bytes.Buffer
	if err := experiments.RunCommand(eng, command, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// mergedOutput replays one campaign's completed artifact set exactly as
// `flit merge` would and asserts the replay recomputed nothing.
func mergedOutput(t *testing.T, c *coord.Coordinator, id string, command []string, j int) string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(c.ArtifactDir(id), "shard-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(files)
	arts := make([]*flit.Artifact, 0, len(files))
	for _, f := range files {
		a, err := flit.ReadArtifactFile(f)
		if err != nil {
			t.Fatalf("reading %s: %v", f, err)
		}
		arts = append(arts, a)
	}
	if err := flit.ValidateShardSet(arts); err != nil {
		t.Fatalf("completed campaign fails merge validation: %v", err)
	}
	eng := experiments.NewEngineCap(j, 0)
	if err := eng.ImportArtifacts(arts...); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := experiments.RunCommand(eng, command, &buf); err != nil {
		t.Fatal(err)
	}
	if m := eng.CacheMetrics(); m.Runs.Misses != 0 {
		t.Errorf("merged replay recomputed %d runs; the shard set should cover everything", m.Runs.Misses)
	}
	return buf.String()
}

// TestCampaignsConvergeUnderFaults is the headline: TWO campaigns on one
// coordinator — a 4-shard table4 and a 2-shard table3 sharing one URL
// and one object store — run by two concurrent workers over HTTP,
// through a transport fault script (503s, stalls, truncations,
// corruption, foreign fences) aimed at coordination and object traffic
// alike, at j∈{1,8}. Each campaign's merged artifact set must replay
// byte-identical to its own unsharded run: cross-campaign isolation is
// exactly the claim the shared-store safety story makes.
func TestCampaignsConvergeUnderFaults(t *testing.T) {
	for _, j := range []int{1, 8} {
		t.Run(fmt.Sprintf("j%d", j), func(t *testing.T) {
			want1 := unshardedOutput(t, campaignCommand, j)
			want2 := unshardedOutput(t, secondCommand, j)
			c, ids := newCoord(t, coord.Options{LeaseTTL: 2 * time.Second},
				coord.Spec{Command: campaignCommand, Shards: 4},
				coord.Spec{Command: secondCommand, Shards: 2})
			srv, flaky := serveCampaign(t, c)
			flaky.Push(storetest.Err503, storetest.Pass, storetest.Stall, storetest.Pass,
				storetest.Truncate, storetest.Corrupt, storetest.Pass, storetest.Err503,
				storetest.WrongEngine, storetest.Pass, storetest.Err503)

			var wg sync.WaitGroup
			errs := make([]error, 2)
			for w := 0; w < 2; w++ {
				cl, err := coord.NewClient(srv.URL, flit.EngineVersion, fastOpts())
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(w int, cl *coord.Client) {
					defer wg.Done()
					_, errs[w] = coord.Work(context.Background(), cl, runner(t, srv.URL, j),
						coord.WorkerOptions{Name: fmt.Sprintf("w%d", w), PollEvery: 10 * time.Millisecond})
				}(w, cl)
			}
			wg.Wait()
			for w, err := range errs {
				if err != nil {
					t.Fatalf("worker %d: %v", w, err)
				}
			}
			select {
			case <-c.Done():
			default:
				t.Fatal("workers returned but the tenancy is not done")
			}
			commands := [][]string{campaignCommand, secondCommand}
			for i, want := range []string{want1, want2} {
				command := commands[i]
				st, err := c.Status(ids[i])
				if err != nil {
					t.Fatal(err)
				}
				if !st.Complete || !st.Validated {
					t.Fatalf("campaign %s not validated: %+v", ids[i], st)
				}
				if got := mergedOutput(t, c, ids[i], command, j); got != want {
					t.Errorf("j=%d: campaign %s merged output differs from its unsharded run", j, ids[i])
				}
			}
		})
	}
}

// TestLeaseExpiryReLease drives the straggler path against the state
// machine directly with an injected clock: a worker that stops
// heartbeating loses its shard on the next sweep, the shard is re-leased
// to a second worker, and the first worker's lease is dead.
func TestLeaseExpiryReLease(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	c, ids := newCoord(t, coord.Options{LeaseTTL: 10 * time.Second, Now: clock},
		coord.Spec{Command: campaignCommand, Shards: 1})
	id := ids[0]
	g1, state, err := c.Lease(id, "w1")
	if err != nil || state != coord.Granted {
		t.Fatalf("first lease: state=%v err=%v", state, err)
	}
	// Heartbeats keep it alive across the TTL boundary.
	now = now.Add(8 * time.Second)
	if err := c.Heartbeat(id, "w1", g1.LeaseID, g1.Shard); err != nil {
		t.Fatalf("heartbeat on a live lease: %v", err)
	}
	if _, state, _ := c.Lease(id, "w2"); state != coord.Wait {
		t.Fatalf("second worker got state %v while the shard is leased, want Wait", state)
	}
	// Silence past the TTL: the sweep must hand the shard to w2.
	now = now.Add(11 * time.Second)
	g2, state, err := c.Lease(id, "w2")
	if err != nil || state != coord.Granted {
		t.Fatalf("re-lease after expiry: state=%v err=%v", state, err)
	}
	if g2.Shard != g1.Shard || g2.LeaseID == g1.LeaseID {
		t.Fatalf("re-lease = %+v, want same shard under a fresh lease (was %+v)", g2, g1)
	}
	if n := c.Releases(); n != 1 {
		t.Fatalf("releases = %d, want 1", n)
	}
	if err := c.Heartbeat(id, "w1", g1.LeaseID, g1.Shard); !errors.Is(err, coord.ErrLeaseLost) {
		t.Fatalf("stale heartbeat = %v, want ErrLeaseLost", err)
	}
	// An expired-but-unsuperseded lease, by contrast, renews: drop w2's
	// lease past its TTL without anyone else asking, then heartbeat.
	now = now.Add(11 * time.Second)
	if err := c.Heartbeat(id, "w2", g2.LeaseID, g2.Shard); err != nil {
		t.Fatalf("renewing an expired, unsuperseded lease: %v", err)
	}
}

// TestStatusNeverStealsLeases pins the PR 8 regression: a status poll
// landing in a heartbeat gap must be a pure read. Stall a worker's
// heartbeats past the TTL, hammer Status and Campaigns, and the
// expired-but-unreclaimed lease must survive — reported with a negative
// expires_in_ms, releases pinned at 0 — so the worker's next heartbeat
// still revives it. The old Status swept and journaled, reclaiming the
// lease and stranding the in-flight worker.
func TestStatusNeverStealsLeases(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	c, ids := newCoord(t, coord.Options{LeaseTTL: 10 * time.Second, Now: clock},
		coord.Spec{Command: campaignCommand, Shards: 1})
	id := ids[0]
	g, state, err := c.Lease(id, "w1")
	if err != nil || state != coord.Granted {
		t.Fatalf("lease: state=%v err=%v", state, err)
	}
	// The heartbeat gap: the lease is 5s past its TTL and nobody has swept.
	now = now.Add(15 * time.Second)
	for i := 0; i < 100; i++ {
		st, err := c.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(st.Leases) != 1 {
			t.Fatalf("status poll %d: lease vanished from a read path: %+v", i, st)
		}
		if ms := st.Leases[0].ExpiresMS; ms >= 0 {
			t.Fatalf("status poll %d: expired lease reports expires_in_ms=%d, want negative", i, ms)
		}
		if infos := c.Campaigns(); infos[0].Leases != 1 {
			t.Fatalf("campaigns poll %d: lease vanished from the fleet view: %+v", i, infos[0])
		}
	}
	if n := c.Releases(); n != 0 {
		t.Fatalf("status polling released %d leases, want 0", n)
	}
	// The worker comes back: its heartbeat must still revive the lease.
	if err := c.Heartbeat(id, "w1", g.LeaseID, g.Shard); err != nil {
		t.Fatalf("heartbeat after status hammering: %v (the poll stole the lease)", err)
	}
	// Revived means re-owned: another worker now waits instead of stealing.
	if _, state, _ := c.Lease(id, "w2"); state != coord.Wait {
		t.Fatalf("post-revival lease state = %v, want Wait", state)
	}
	if n := c.Releases(); n != 0 {
		t.Fatalf("releases = %d after revival, want 0", n)
	}
}

// TestHeartbeatLossReLeaseAndDuplicateCompletion proves the full
// crash-recovery story over HTTP: worker w1 leases the only shard and
// goes silent (the crash), the lease expires, worker w2's lease polling
// sweeps it, re-leases, and completes the campaign — and then w1 comes
// back from the dead and reports the same shard twice more under its
// stale lease. Every completion must be accepted, the artifact file must
// stay byte-stable, and the campaign must validate.
func TestHeartbeatLossReLeaseAndDuplicateCompletion(t *testing.T) {
	c, ids := newCoord(t, coord.Options{LeaseTTL: 200 * time.Millisecond},
		coord.Spec{Command: campaignCommand, Shards: 1})
	id := ids[0]
	srv, flaky := serveCampaign(t, c)
	// The dying worker's requests hit transport faults too — they must
	// cost retries, not correctness. Aim the script at coordination calls
	// only so the object-store warmup stays clean.
	flaky.Match = func(r *http.Request) bool {
		return strings.HasPrefix(r.URL.Path, "/v1/coord/")
	}
	flaky.Push(storetest.Err503, storetest.Pass, storetest.Err503)

	ctx := context.Background()
	cl1, err := coord.NewClient(srv.URL, flit.EngineVersion, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	g1, state, err := cl1.Lease(ctx, id, "w1")
	if err != nil || state != coord.Granted {
		t.Fatalf("w1 lease: state=%v err=%v", state, err)
	}
	// w1 computes its artifact, then "crashes": no heartbeat ever arrives.
	art1, err := runner(t, srv.URL, 2)(g1.Command, exec.Shard{Index: g1.Shard, Count: g1.Count})
	if err != nil {
		t.Fatal(err)
	}
	// w2 starts polling right away. Status no longer sweeps, so w2's own
	// lease polls are what reclaim the expired lease — exactly the
	// production path.
	cl2, err := coord.NewClient(srv.URL, flit.EngineVersion, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := coord.Work(ctx, cl2, runner(t, srv.URL, 2),
		coord.WorkerOptions{Name: "w2", PollEvery: 10 * time.Millisecond})
	if err != nil {
		t.Fatalf("w2: %v", err)
	}
	if stats.Completed != 1 {
		t.Fatalf("w2 completed %d shards, want 1", stats.Completed)
	}
	if n := c.Releases(); n < 1 {
		t.Fatalf("releases = %d after a heartbeat loss, want >= 1", n)
	}
	artPath := filepath.Join(c.ArtifactDir(id), "shard-0.json")
	canonical, err := os.ReadFile(artPath)
	if err != nil {
		t.Fatal(err)
	}
	// The ghost returns: duplicate completions under a long-dead lease.
	for i := 0; i < 2; i++ {
		campaignDone, allDone, _, err := cl1.Complete(ctx, id, "w1", g1.LeaseID, g1.Shard, art1)
		if err != nil {
			t.Fatalf("duplicate completion %d rejected: %v", i, err)
		}
		if !campaignDone || !allDone {
			t.Errorf("duplicate completion %d over a finished campaign reported done=%v allDone=%v", i, campaignDone, allDone)
		}
	}
	after, err := os.ReadFile(artPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canonical, after) {
		t.Error("duplicate completion changed the stored artifact bytes")
	}
	if st, err := c.Status(id); err != nil || !st.Complete || !st.Validated || st.Done != 1 {
		t.Fatalf("campaign state after duplicates: %+v (%v)", st, err)
	}
	if got, want := mergedOutput(t, c, id, campaignCommand, 2), unshardedOutput(t, campaignCommand, 2); got != want {
		t.Error("merged output differs from unsharded run after re-lease + duplicates")
	}
}

// TestCoordinatorRestartRecovery kills the coordinator mid-campaign and
// reopens its directory: every campaign resumes, completions stay
// completed, the in-flight lease stays leased under its original ID (the
// worker keeps heartbeating it), and the campaign finishes with no
// duplicate or lost shards.
func TestCoordinatorRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	spec := coord.Spec{Command: campaignCommand, Shards: 3}
	c1, err := coord.New(dir, coord.Options{LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := c1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	run := func(shard, count int) []byte {
		art, err := experiments.RunShard(campaignCommand, exec.Shard{Index: shard, Count: count}, 2)
		if err != nil {
			t.Fatal(err)
		}
		return art
	}
	g0, state, err := c1.Lease(id, "w1")
	if err != nil || state != coord.Granted {
		t.Fatalf("lease 0: %v %v", state, err)
	}
	if _, _, _, err := c1.Complete(id, "w1", g0.LeaseID, g0.Shard, run(g0.Shard, g0.Count)); err != nil {
		t.Fatal(err)
	}
	g1, state, err := c1.Lease(id, "w1")
	if err != nil || state != coord.Granted {
		t.Fatalf("lease 1: %v %v", state, err)
	}
	// Crash: c1 is abandoned with shard 0 done and shard 1 mid-flight.
	c2, err := coord.New(dir, coord.Options{LeaseTTL: time.Minute})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	infos := c2.Campaigns()
	if len(infos) != 1 || infos[0].ID != id || infos[0].Shards != 3 {
		t.Fatalf("recovered tenancy = %+v, want campaign %s with 3 shards", infos, id)
	}
	st, err := c2.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 1 || len(st.Completed) != 1 || st.Completed[0] != g0.Shard {
		t.Fatalf("recovered completions: %+v", st)
	}
	if len(st.Leases) != 1 || st.Leases[0].LeaseID != g1.LeaseID || st.Leases[0].Shard != g1.Shard {
		t.Fatalf("recovered leases: %+v, want %s on shard %d", st.Leases, g1.LeaseID, g1.Shard)
	}
	// The worker's heartbeat (same lease ID) lands on the recovered state.
	if err := c2.Heartbeat(id, "w1", g1.LeaseID, g1.Shard); err != nil {
		t.Fatalf("heartbeat across restart: %v", err)
	}
	// Finish: the in-flight shard completes, a fresh worker takes the last
	// one. Leasing must hand out exactly the one remaining shard — a
	// duplicate grant would double-run, a lost one would stall.
	if _, _, _, err := c2.Complete(id, "w1", g1.LeaseID, g1.Shard, run(g1.Shard, g1.Count)); err != nil {
		t.Fatal(err)
	}
	g2, state, err := c2.Lease(id, "w2")
	if err != nil || state != coord.Granted {
		t.Fatalf("lease 2: %v %v", state, err)
	}
	if g2.Shard == g0.Shard || g2.Shard == g1.Shard {
		t.Fatalf("recovered coordinator re-granted shard %d", g2.Shard)
	}
	if _, _, _, err := c2.Complete(id, "w2", g2.LeaseID, g2.Shard, run(g2.Shard, g2.Count)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-c2.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("campaign did not finish after recovery")
	}
	if st, err := c2.Status(id); err != nil || !st.Complete || !st.Validated {
		t.Fatalf("recovered campaign not validated: %+v (%v)", st, err)
	}
	if got, want := mergedOutput(t, c2, id, campaignCommand, 2), unshardedOutput(t, campaignCommand, 2); got != want {
		t.Error("merged output differs from unsharded run after coordinator restart")
	}
}

// TestSubmitIdempotentAndDistinct: re-submitting a spec names the
// existing campaign (created=false, same ID); a spec differing in any
// coordinate — command or shard count — is a distinct campaign. What
// used to be "refusing to mix campaigns" is now simply tenancy.
func TestSubmitIdempotentAndDistinct(t *testing.T) {
	c, ids := newCoord(t, coord.Options{}, coord.Spec{Command: campaignCommand, Shards: 2})
	id, created, err := c.Submit(coord.Spec{Command: campaignCommand, Shards: 2})
	if err != nil || created || id != ids[0] {
		t.Fatalf("re-submit = (%s, %v, %v), want (%s, false, nil)", id, created, err, ids[0])
	}
	id2, created, err := c.Submit(coord.Spec{Command: secondCommand, Shards: 2})
	if err != nil || !created || id2 == ids[0] {
		t.Fatalf("distinct command = (%s, %v, %v), want fresh campaign", id2, created, err)
	}
	id3, created, err := c.Submit(coord.Spec{Command: campaignCommand, Shards: 5})
	if err != nil || !created || id3 == ids[0] || id3 == id2 {
		t.Fatalf("distinct shard count = (%s, %v, %v), want fresh campaign", id3, created, err)
	}
	if infos := c.Campaigns(); len(infos) != 3 ||
		infos[0].ID != ids[0] || infos[1].ID != id2 || infos[2].ID != id3 {
		t.Fatalf("tenancy = %+v, want submission order [%s %s %s]", infos, ids[0], id2, id3)
	}
	// Unknown campaigns answer ErrNoCampaign everywhere.
	if _, _, err := c.Lease("c0000000000000000", "w"); !errors.Is(err, coord.ErrNoCampaign) {
		t.Fatalf("lease on unknown campaign = %v, want ErrNoCampaign", err)
	}
	if _, err := c.Status("c0000000000000000"); !errors.Is(err, coord.ErrNoCampaign) {
		t.Fatalf("status on unknown campaign = %v, want ErrNoCampaign", err)
	}
}

// TestGCRetiresSupersededGenerations: completed campaigns sharing a
// command are generations of one study; GC keeps the newest keep per
// command and retires the rest — journal first, then artifact files —
// while running campaigns are never touched.
func TestGCRetiresSupersededGenerations(t *testing.T) {
	dir := t.TempDir()
	c, err := coord.New(dir, coord.Options{})
	if err != nil {
		t.Fatal(err)
	}
	finish := func(spec coord.Spec) string {
		t.Helper()
		id, _, err := c.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < spec.Shards; i++ {
			g, state, err := c.Lease(id, "w")
			if err != nil || state != coord.Granted {
				t.Fatalf("lease: %v %v", state, err)
			}
			art, err := experiments.RunShard(spec.Command, exec.Shard{Index: g.Shard, Count: g.Count}, 2)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, _, err := c.Complete(id, "w", g.LeaseID, g.Shard, art); err != nil {
				t.Fatal(err)
			}
		}
		return id
	}
	oldGen := finish(coord.Spec{Command: campaignCommand, Shards: 2})
	newGen := finish(coord.Spec{Command: campaignCommand, Shards: 3})
	running, _, err := c.Submit(coord.Spec{Command: secondCommand, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Dry run plans without touching anything.
	res, err := c.GC(1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Retired) != 1 || res.Retired[0] != oldGen || res.Kept != 2 {
		t.Fatalf("dry-run plan = %+v, want retire [%s] keep 2", res, oldGen)
	}
	if _, err := c.Status(oldGen); err != nil {
		t.Fatalf("dry run retired the campaign: %v", err)
	}
	// The real pass retires the superseded generation only.
	res, err = c.GC(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Retired) != 1 || res.Retired[0] != oldGen {
		t.Fatalf("gc = %+v, want retire [%s]", res, oldGen)
	}
	if _, err := c.Status(oldGen); !errors.Is(err, coord.ErrNoCampaign) {
		t.Fatalf("retired campaign still answers status: %v", err)
	}
	if _, err := os.Stat(c.ArtifactDir(oldGen)); !os.IsNotExist(err) {
		t.Fatalf("retired campaign's artifact dir survives: %v", err)
	}
	for _, id := range []string{newGen, running} {
		if _, err := c.Status(id); err != nil {
			t.Fatalf("gc touched surviving campaign %s: %v", id, err)
		}
	}
	if _, err := os.Stat(filepath.Join(c.ArtifactDir(newGen), "shard-0.json")); err != nil {
		t.Fatalf("surviving generation lost artifacts: %v", err)
	}
	// The retirement is journaled: a restart recovers the pruned tenancy.
	c2, err := coord.New(dir, coord.Options{})
	if err != nil {
		t.Fatalf("recovery after gc: %v", err)
	}
	infos := c2.Campaigns()
	if len(infos) != 2 || infos[0].ID != newGen || infos[1].ID != running {
		t.Fatalf("recovered tenancy after gc = %+v", infos)
	}
}

// TestCompleteRejectsForeignArtifacts: completions carrying the wrong
// engine, command, or shard coordinates must be refused — they would
// poison the merge.
func TestCompleteRejectsForeignArtifacts(t *testing.T) {
	c, ids := newCoord(t, coord.Options{}, coord.Spec{Command: campaignCommand, Shards: 2})
	id := ids[0]
	g, state, err := c.Lease(id, "w1")
	if err != nil || state != coord.Granted {
		t.Fatalf("lease: %v %v", state, err)
	}
	// Wrong shard coordinates: an artifact of shard 1 reported as shard 0.
	other, err := experiments.RunShard(campaignCommand, exec.Shard{Index: 1, Count: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Complete(id, "w1", g.LeaseID, g.Shard, other); err == nil {
		t.Error("artifact with foreign shard coordinates accepted")
	}
	// Wrong command — which in the multi-tenant world also means an
	// artifact of one campaign reported against another.
	foreign, err := experiments.RunShard(secondCommand, exec.Shard{Index: 0, Count: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Complete(id, "w1", g.LeaseID, g.Shard, foreign); err == nil {
		t.Error("artifact recording a foreign command accepted")
	}
	// Garbage bytes.
	if _, _, _, err := c.Complete(id, "w1", g.LeaseID, g.Shard, []byte("{")); err == nil {
		t.Error("undecodable artifact accepted")
	}
	if st, err := c.Status(id); err != nil || st.Done != 0 {
		t.Fatalf("rejected completions still marked shards done: %+v (%v)", st, err)
	}
}

// TestWorkDrainCancelsScheduling pins the satellite-2 fix end to end: a
// worker whose every shard is leased elsewhere sits in its poll loop;
// cancelling its context must abort the scheduling calls immediately —
// not after the transport's 30s operation deadline — and return
// context.Canceled.
func TestWorkDrainCancelsScheduling(t *testing.T) {
	c, ids := newCoord(t, coord.Options{LeaseTTL: time.Minute},
		coord.Spec{Command: campaignCommand, Shards: 1})
	if _, state, err := c.Lease(ids[0], "hog"); err != nil || state != coord.Granted {
		t.Fatalf("hog lease: %v %v", state, err)
	}
	srv, _ := serveCampaign(t, c)
	// Production-scale deadlines: if the drain relied on the operation
	// deadline instead of ctx, this test would take 30s and fail the
	// timeout below.
	cl, err := coord.NewClient(srv.URL, flit.EngineVersion, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := coord.Work(ctx, cl, runner(t, srv.URL, 2),
			coord.WorkerOptions{Name: "drainee", PollEvery: 50 * time.Millisecond})
		done <- err
	}()
	time.Sleep(150 * time.Millisecond) // let it reach the poll loop
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("drained Work returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled Work did not return promptly; drain is riding out transport deadlines")
	}
}
